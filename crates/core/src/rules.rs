//! The equivalence rules (9)–(16) of §3.3, as rewrite rules over
//! expressions.
//!
//! Each rule implements [`RewriteRule::apply_at`]: given a node of the
//! expression tree and the peer at which that node will be evaluated, it
//! proposes equivalent replacements. The optimizer applies rules at every
//! position ([`all_rewrites`] tracks how `EvalAt` changes the evaluation
//! site of its subtree) and keeps the cheapest candidate under the cost
//! model.
//!
//! Soundness — the paper's `e1@p1 ≡ e2@p2` ("for any state Σ, the
//! evaluations produce the same results and leave the same Σ") — is
//! enforced by construction and verified by the property tests in
//! `tests/prop_rules.rs`: every rule application is executed against the
//! naive plan on randomized systems, comparing both the value and the
//! final Σ. Rules that intentionally extend Σ (rule (13) materializes a
//! shared transfer in a new document, exactly as in the paper) report
//! [`RewriteRule::preserves_sigma`]` = false` and are checked for value
//! equivalence plus *conservative* Σ-extension only.

use crate::cost::CostModel;
use crate::expr::{Expr, LocatedQuery, PeerRef, SendDest};
use axml_xml::ids::{DocName, PeerId};

/// Context available to rules: the cost-model snapshot (which carries the
/// catalog, link matrix and visible service definitions).
pub struct OptContext<'a> {
    /// The system snapshot.
    pub model: &'a CostModel,
    /// Counter for fresh temporary document names (rule (13)).
    pub tmp_counter: std::cell::Cell<u64>,
}

impl<'a> OptContext<'a> {
    /// Build a context over a model.
    pub fn new(model: &'a CostModel) -> Self {
        OptContext {
            model,
            tmp_counter: std::cell::Cell::new(0),
        }
    }

    /// A fresh temporary document name.
    pub fn fresh_tmp(&self) -> DocName {
        let n = self.tmp_counter.get();
        self.tmp_counter.set(n + 1);
        DocName::new(format!("·tmp{n}"))
    }
}

/// One equivalence rule.
pub trait RewriteRule {
    /// Short identifier, e.g. `"R10-delegate"`.
    fn name(&self) -> &'static str;
    /// Does the rewritten plan leave Σ exactly as the original (true for
    /// all rules except the materializing rule (13))?
    fn preserves_sigma(&self) -> bool {
        true
    }
    /// Propose replacements for `expr`, to be evaluated at `site`.
    fn apply_at(&self, site: PeerId, expr: &Expr, ctx: &OptContext) -> Vec<Expr>;
}

/// Wrap `e` so its value is computed at `peer` and shipped to `site`.
/// `e`'s evaluation context moves from `site` to `peer`, so its nested
/// delegation returns are retargeted accordingly.
fn delegate(site: PeerId, peer: PeerId, mut e: Expr) -> Expr {
    e.retarget_returns(site, peer);
    Expr::EvalAt {
        peer,
        expr: Box::new(Expr::Send {
            dest: SendDest::Peer(site),
            payload: Box::new(e),
        }),
    }
}

/// Where an argument expression's data naturally lives (used to pick
/// delegation targets).
fn data_home(model: &CostModel, site: PeerId, e: &Expr) -> Option<PeerId> {
    match e {
        Expr::Tree { at, .. } => Some(*at),
        Expr::Doc { name, at } => model.resolve_doc(site, name, at).map(|(p, _)| p),
        Expr::Apply { args, .. } => args.first().and_then(|a| data_home(model, site, a)),
        Expr::EvalAt { peer, .. } => Some(*peer),
        _ => None,
    }
}

// ---------------------------------------------------------------------
// Rule (9): generic resolution — pickDoc/pickService as optimizer choices.
// ---------------------------------------------------------------------

/// Definition (9) as a rule: replace `d@any` / `sc(any, …)` with each
/// concrete replica, letting cost decide instead of a fixed pick policy.
pub struct R9Generic;

impl RewriteRule for R9Generic {
    fn name(&self) -> &'static str {
        "R9-generic"
    }

    fn apply_at(&self, _site: PeerId, expr: &Expr, ctx: &OptContext) -> Vec<Expr> {
        match expr {
            Expr::Doc {
                name,
                at: PeerRef::Any,
            } => ctx
                .model
                .doc_replicas(name)
                .iter()
                .map(|(p, concrete)| Expr::Doc {
                    name: concrete.clone(),
                    at: PeerRef::At(*p),
                })
                .collect(),
            Expr::Sc {
                provider: PeerRef::Any,
                service,
                params,
                forward,
            } => ctx
                .model
                .service_replicas(service)
                .iter()
                .map(|(p, concrete)| Expr::Sc {
                    provider: PeerRef::At(*p),
                    service: concrete.clone(),
                    params: params.clone(),
                    forward: forward.clone(),
                })
                .collect(),
            _ => vec![],
        }
    }
}

// ---------------------------------------------------------------------
// Rule (10): query delegation.
// ---------------------------------------------------------------------

/// Rule (10): `eval@p1(q(t)) ≡ send_{p2→p1}((send_{p1→p2}(q))(send_{p1→p2}(t)))`
/// — evaluate the query where (some of) its data lives, shipping the
/// definition there and only the results back.
pub struct R10Delegate;

impl RewriteRule for R10Delegate {
    fn name(&self) -> &'static str {
        "R10-delegate"
    }

    fn apply_at(&self, site: PeerId, expr: &Expr, ctx: &OptContext) -> Vec<Expr> {
        let Expr::Apply { query, args } = expr else {
            return vec![];
        };
        let mut targets: Vec<PeerId> = args
            .iter()
            .filter_map(|a| data_home(ctx.model, site, a))
            .collect();
        targets.sort_unstable();
        targets.dedup();
        targets
            .into_iter()
            .filter(|t| *t != site)
            .map(|t| {
                delegate(
                    site,
                    t,
                    Expr::Apply {
                        query: query.clone(),
                        args: args.clone(),
                    },
                )
            })
            .collect()
    }
}

// ---------------------------------------------------------------------
// Rule (11) + Example 1: decomposition and pushed selections.
// ---------------------------------------------------------------------

/// Rule (11): `eval@p(q) ≡ eval@p(q1(eval@p(q2), …))` — plus the Example-1
/// composite: decompose into `outer(σ(scan))` and delegate the σ-carrying
/// part to the argument's home peer, shipping only the selected subset.
pub struct R11PushSelections;

impl RewriteRule for R11PushSelections {
    fn name(&self) -> &'static str {
        "R11-push-selections"
    }

    fn apply_at(&self, site: PeerId, expr: &Expr, ctx: &OptContext) -> Vec<Expr> {
        let Expr::Apply { query, args } = expr else {
            return vec![];
        };
        if args.len() != 1 {
            return vec![];
        }
        let Some((outer, pushed)) = query.query.decompose_selection() else {
            return vec![];
        };
        let mut out = Vec::new();
        // Pure decomposition (rule (11) itself).
        let decomposed = Expr::Apply {
            query: LocatedQuery::new(outer.clone(), query.def_at),
            args: vec![Expr::Apply {
                query: LocatedQuery::new(pushed.clone(), query.def_at),
                args: args.clone(),
            }],
        };
        out.push(decomposed);
        // Example 1: delegate the pushed part to the data's home.
        if let Some(home) = data_home(ctx.model, site, &args[0]) {
            if home != site {
                out.push(Expr::Apply {
                    query: LocatedQuery::new(outer, query.def_at),
                    args: vec![delegate(
                        site,
                        home,
                        Expr::Apply {
                            query: LocatedQuery::new(pushed, query.def_at),
                            args: args.clone(),
                        },
                    )],
                });
            }
        }
        out
    }
}

// ---------------------------------------------------------------------
// Rule (12): transit shortcuts — add or remove an intermediary stop.
// ---------------------------------------------------------------------

/// Rule (12), left-to-right: data in transit `p0 → p1 → p2` may skip the
/// intermediary stop.
pub struct R12RemoveStop;

impl RewriteRule for R12RemoveStop {
    fn name(&self) -> &'static str {
        "R12-remove-stop"
    }

    fn apply_at(&self, site: PeerId, expr: &Expr, _ctx: &OptContext) -> Vec<Expr> {
        // Shape: eval@v(send(site, eval@p1(send(v, X)))) — fetch via v —
        // rewritten to eval@p1(send(site, X)).
        let Expr::EvalAt {
            peer: via,
            expr: inner,
        } = expr
        else {
            return vec![];
        };
        let Expr::Send {
            dest: SendDest::Peer(back),
            payload,
        } = &**inner
        else {
            return vec![];
        };
        if *back != site {
            return vec![];
        }
        let Expr::EvalAt {
            peer: origin,
            expr: inner2,
        } = &**payload
        else {
            return vec![];
        };
        let Expr::Send {
            dest: SendDest::Peer(mid),
            payload: x,
        } = &**inner2
        else {
            return vec![];
        };
        if mid != via {
            return vec![];
        }
        vec![delegate(site, *origin, (**x).clone())]
    }
}

/// Rule (12), right-to-left: *"data in transit from p0 to p2 may make an
/// intermediary stop at another peer p1"* — sometimes beneficial (e.g.
/// relaying through a well-connected gateway).
pub struct R12AddStop;

impl RewriteRule for R12AddStop {
    fn name(&self) -> &'static str {
        "R12-add-stop"
    }

    fn apply_at(&self, site: PeerId, expr: &Expr, ctx: &OptContext) -> Vec<Expr> {
        // Shape: eval@p1(send(site, X)) → eval@v(send(site, eval@p1(send(v, X))))
        let Expr::EvalAt {
            peer: origin,
            expr: inner,
        } = expr
        else {
            return vec![];
        };
        let Expr::Send {
            dest: SendDest::Peer(back),
            payload: x,
        } = &**inner
        else {
            return vec![];
        };
        if *back != site {
            return vec![];
        }
        (0..ctx.model.peer_count() as u32)
            .map(PeerId)
            .filter(|v| v != origin && *v != site)
            .map(|v| delegate(site, v, delegate(v, *origin, (**x).clone())))
            .collect()
    }
}

// ---------------------------------------------------------------------
// Rule (13): transfer sharing.
// ---------------------------------------------------------------------

/// Rule (13): when two sub-expressions both transfer the same remote data,
/// transfer it once into a (new) local document and read it twice. Extends
/// Σ with the materialized document, exactly as the paper's `d@p`.
pub struct R13ShareTransfer;

impl RewriteRule for R13ShareTransfer {
    fn name(&self) -> &'static str {
        "R13-share-transfer"
    }

    fn preserves_sigma(&self) -> bool {
        false
    }

    fn apply_at(&self, site: PeerId, expr: &Expr, ctx: &OptContext) -> Vec<Expr> {
        let Expr::Apply { query, args } = expr else {
            return vec![];
        };
        // Find two identical remote-data arguments.
        let mut shared: Option<(usize, usize)> = None;
        'outer: for i in 0..args.len() {
            for j in (i + 1)..args.len() {
                let remote = match data_home(ctx.model, site, &args[i]) {
                    Some(h) => h != site,
                    None => false,
                };
                if remote && args[i].fingerprint() == args[j].fingerprint() {
                    shared = Some((i, j));
                    break 'outer;
                }
            }
        }
        let Some((i, j)) = shared else { return vec![] };
        let tmp = ctx.fresh_tmp();
        let mut new_args = args.clone();
        let local_ref = Expr::Doc {
            name: tmp.clone(),
            at: PeerRef::At(site),
        };
        new_args[i] = local_ref.clone();
        new_args[j] = local_ref;
        vec![Expr::Seq(vec![
            Expr::Send {
                dest: SendDest::NewDoc {
                    peer: site,
                    name: tmp,
                },
                payload: Box::new(args[i].clone()),
            },
            Expr::Apply {
                query: query.clone(),
                args: new_args,
            },
        ])]
    }
}

// ---------------------------------------------------------------------
// Rule (14): relocation of evaluation.
// ---------------------------------------------------------------------

/// Rule (14): `eval@p(e) ≡ eval@p1(send(p, eval@p(e)))` — any value-producing
/// expression may be computed elsewhere and shipped back. Candidates are
/// the peers the expression mentions (shipping to an unrelated peer is
/// never cheaper, so the search space stays bounded).
pub struct R14Relocate;

impl RewriteRule for R14Relocate {
    fn name(&self) -> &'static str {
        "R14-relocate"
    }

    fn apply_at(&self, site: PeerId, expr: &Expr, _ctx: &OptContext) -> Vec<Expr> {
        // Avoid stacking relocations and relocating pure side-effect nodes.
        if matches!(
            expr,
            Expr::EvalAt { .. } | Expr::Send { .. } | Expr::Deploy { .. } | Expr::Seq(_)
        ) {
            return vec![];
        }
        expr.mentioned_peers()
            .into_iter()
            .filter(|p| *p != site)
            .map(|p| delegate(site, p, expr.clone()))
            .collect()
    }
}

// ---------------------------------------------------------------------
// Rule (15): sc relocation.
// ---------------------------------------------------------------------

/// Rule (15): an `sc`-rooted tree with an explicit forward list evaluates
/// identically from any peer — the results go straight to the forward
/// list. (*"Notice there is no need to ship results back, since results
/// are sent directly to the locations in the forward list."*)
pub struct R15ScRelocate;

impl RewriteRule for R15ScRelocate {
    fn name(&self) -> &'static str {
        "R15-sc-relocate"
    }

    fn apply_at(&self, site: PeerId, expr: &Expr, _ctx: &OptContext) -> Vec<Expr> {
        let Expr::Sc {
            provider, forward, ..
        } = expr
        else {
            return vec![];
        };
        if forward.is_empty() {
            return vec![]; // default forward = back to the caller: site matters
        }
        let mut candidates = match provider {
            PeerRef::At(p) => vec![*p],
            PeerRef::Any => vec![],
        };
        candidates.extend(forward.iter().map(|a| a.peer));
        candidates.sort_unstable();
        candidates.dedup();
        candidates
            .into_iter()
            .filter(|p| *p != site)
            .map(|p| {
                let mut moved = expr.clone();
                moved.retarget_returns(site, p);
                Expr::EvalAt {
                    peer: p,
                    expr: Box::new(moved),
                }
            })
            .collect()
    }
}

// ---------------------------------------------------------------------
// Rule (16): pushing queries over service calls.
// ---------------------------------------------------------------------

/// Rule (16): `q(sc(p1, s1, params))` — ship `q` to the provider and
/// evaluate `q(q1(params))` there, where `q1` is the (visible) query
/// implementing `s1`. Only the final results cross the wire.
pub struct R16PushOverSc;

impl RewriteRule for R16PushOverSc {
    fn name(&self) -> &'static str {
        "R16-push-over-sc"
    }

    fn apply_at(&self, site: PeerId, expr: &Expr, ctx: &OptContext) -> Vec<Expr> {
        let Expr::Apply { query, args } = expr else {
            return vec![];
        };
        if args.len() != 1 {
            return vec![];
        }
        let Expr::Sc {
            provider: PeerRef::At(p1),
            service,
            params,
            forward,
        } = &args[0]
        else {
            return vec![];
        };
        if !forward.is_empty() {
            return vec![]; // results don't come back: q has nothing to read
        }
        let Some(q1) = ctx.model.service_query(*p1, service) else {
            return vec![]; // not a declarative service: definition invisible
        };
        if *p1 == site {
            return vec![];
        }
        vec![delegate(
            site,
            *p1,
            Expr::Apply {
                query: query.clone(),
                args: vec![Expr::Apply {
                    query: LocatedQuery::new(q1.clone(), *p1),
                    args: params.clone(),
                }],
            },
        )]
    }
}

/// The standard rule set, in application order.
pub fn standard_rules() -> Vec<Box<dyn RewriteRule>> {
    vec![
        Box::new(R9Generic),
        Box::new(R10Delegate),
        Box::new(R11PushSelections),
        Box::new(R12RemoveStop),
        Box::new(R12AddStop),
        Box::new(R13ShareTransfer),
        Box::new(R14Relocate),
        Box::new(R15ScRelocate),
        Box::new(R16PushOverSc),
    ]
}

/// Can `expr` be *correctly* evaluated at `site`? The only site-sensitive
/// construct is `Apply`: its query's `doc("…")` sources read the
/// evaluation site's documents, so every dependency must be hosted there.
/// Rules may propose relocations that violate this; the rewrite driver
/// filters them out.
pub fn evaluable_at(model: &CostModel, site: PeerId, expr: &Expr) -> bool {
    match expr {
        Expr::Apply { query, args } => {
            query
                .query
                .doc_dependencies()
                .iter()
                .all(|d| model.doc_size(site, d).is_some())
                && args.iter().all(|a| evaluable_at(model, site, a))
        }
        Expr::EvalAt { peer, expr } => evaluable_at(model, *peer, expr),
        Expr::Send { payload, .. } => evaluable_at(model, site, payload),
        Expr::Sc { params, .. } => params.iter().all(|p| evaluable_at(model, site, p)),
        Expr::Seq(es) => es.iter().all(|e| evaluable_at(model, site, e)),
        Expr::Tree { .. } | Expr::Doc { .. } | Expr::Deploy { .. } => true,
    }
}

/// Apply every rule at every position of `expr` (evaluated at `site`),
/// returning whole rewritten expressions tagged with the rule name.
/// Descending into `EvalAt{p, …}` switches the evaluation site to `p`.
/// Candidates that would relocate a `doc(…)`-reading query away from its
/// documents are dropped ([`evaluable_at`]).
pub fn all_rewrites(
    rules: &[Box<dyn RewriteRule>],
    site: PeerId,
    expr: &Expr,
    ctx: &OptContext,
) -> Vec<(&'static str, Expr)> {
    let mut out = rewrites_unchecked(rules, site, expr, ctx);
    out.retain(|(_, e)| evaluable_at(ctx.model, site, e));
    out
}

fn rewrites_unchecked(
    rules: &[Box<dyn RewriteRule>],
    site: PeerId,
    expr: &Expr,
    ctx: &OptContext,
) -> Vec<(&'static str, Expr)> {
    let mut out = Vec::new();
    for rule in rules {
        for e2 in rule.apply_at(site, expr, ctx) {
            out.push((rule.name(), e2));
        }
    }
    let child_site = match expr {
        Expr::EvalAt { peer, .. } => *peer,
        _ => site,
    };
    for (i, child) in expr.children().iter().enumerate() {
        for (name, c2) in rewrites_unchecked(rules, child_site, child, ctx) {
            out.push((name, expr.with_child(i, c2)));
        }
    }
    out
}

/// Is the named rule Σ-preserving?
pub fn rule_preserves_sigma(rules: &[Box<dyn RewriteRule>], name: &str) -> bool {
    rules
        .iter()
        .find(|r| r.name() == name)
        .map(|r| r.preserves_sigma())
        .unwrap_or(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::AxmlSystem;
    use axml_net::link::LinkCost;
    use axml_query::Query;
    use axml_xml::equiv::forest_equiv;
    use axml_xml::tree::Tree;

    fn catalog_xml(n: usize) -> String {
        let mut xml = String::from("<catalog>");
        for i in 0..n {
            xml.push_str(&format!(
                r#"<pkg name="p{i}"><size>{}</size></pkg>"#,
                i * 137 % 10000
            ));
        }
        xml.push_str("</catalog>");
        xml
    }

    fn system() -> (AxmlSystem, PeerId, PeerId, PeerId) {
        let mut sys = AxmlSystem::new();
        let a = sys.add_peer("a");
        let b = sys.add_peer("b");
        let c = sys.add_peer("c");
        sys.net_mut().set_link(a, b, LinkCost::wan());
        sys.net_mut().set_link(a, c, LinkCost::wan());
        sys.net_mut().set_link(b, c, LinkCost::lan());
        sys.install_doc(b, "catalog", Tree::parse(&catalog_xml(50)).unwrap())
            .unwrap();
        (sys, a, b, c)
    }

    fn sel_query() -> Query {
        Query::parse(
            "sel",
            r#"for $p in $0//pkg where $p/size/text() > 5000 return <big>{$p/@name}</big>"#,
        )
        .unwrap()
    }

    fn naive_apply(a: PeerId, b: PeerId) -> Expr {
        Expr::Apply {
            query: LocatedQuery::new(sel_query(), a),
            args: vec![Expr::Doc {
                name: "catalog".into(),
                at: PeerRef::At(b),
            }],
        }
    }

    /// Evaluate two plans on fresh systems, asserting equal values.
    fn assert_equivalent(build: impl Fn() -> (AxmlSystem, PeerId), e1: &Expr, e2: &Expr) {
        let (mut s1, site1) = build();
        let (mut s2, site2) = build();
        let v1 = s1.eval(site1, e1).unwrap();
        let v2 = s2.eval(site2, e2).unwrap();
        assert!(
            forest_equiv(&v1, &v2),
            "values differ:\n  {e1}\n  {e2}\n  {} vs {} trees",
            v1.len(),
            v2.len()
        );
    }

    #[test]
    fn r10_produces_equivalent_cheaper_plan() {
        let (sys, a, b, _c) = system();
        let model = CostModel::from_system(&sys);
        let ctx = OptContext::new(&model);
        let naive = naive_apply(a, b);
        let rewrites = R10Delegate.apply_at(a, &naive, &ctx);
        assert_eq!(rewrites.len(), 1);
        assert_equivalent(
            || {
                let (s, a, _, _) = system();
                (s, a)
            },
            &naive,
            &rewrites[0],
        );
    }

    #[test]
    fn r11_decomposes_and_delegates() {
        let (sys, a, b, _c) = system();
        let model = CostModel::from_system(&sys);
        let ctx = OptContext::new(&model);
        let naive = naive_apply(a, b);
        let rewrites = R11PushSelections.apply_at(a, &naive, &ctx);
        assert_eq!(rewrites.len(), 2, "pure decomposition + delegated σ");
        for r in &rewrites {
            assert_equivalent(
                || {
                    let (s, a, _, _) = system();
                    (s, a)
                },
                &naive,
                r,
            );
        }
    }

    #[test]
    fn r12_roundtrip_add_then_remove() {
        let (sys, a, b, c) = system();
        let model = CostModel::from_system(&sys);
        let ctx = OptContext::new(&model);
        let direct = delegate(
            a,
            b,
            Expr::Doc {
                name: "catalog".into(),
                at: PeerRef::At(b),
            },
        );
        let with_stops = R12AddStop.apply_at(a, &direct, &ctx);
        assert_eq!(with_stops.len(), 1, "only c is a candidate intermediary");
        let via_c = &with_stops[0];
        assert_equivalent(
            || {
                let (s, a, _, _) = system();
                (s, a)
            },
            &direct,
            via_c,
        );
        // removing the stop gives back the direct shape
        let removed = R12RemoveStop.apply_at(a, via_c, &ctx);
        assert_eq!(removed.len(), 1);
        assert_eq!(removed[0].fingerprint(), direct.fingerprint());
        let _ = c;
    }

    #[test]
    fn r13_shares_duplicate_transfers() {
        let (sys, a, b, _c) = system();
        let model = CostModel::from_system(&sys);
        let ctx = OptContext::new(&model);
        let q2 = Query::parse(
            "pair",
            "for $x in $0//pkg for $y in $1//pkg where $x/@name = $y/@name return <m>{$x/@name}</m>",
        )
        .unwrap();
        let arg = Expr::Doc {
            name: "catalog".into(),
            at: PeerRef::At(b),
        };
        let e = Expr::Apply {
            query: LocatedQuery::new(q2, a),
            args: vec![arg.clone(), arg],
        };
        let shared = R13ShareTransfer.apply_at(a, &e, &ctx);
        assert_eq!(shared.len(), 1);
        assert!(!R13ShareTransfer.preserves_sigma());
        // equivalent values; Σ extended by the temp doc
        let (mut s1, _, _, _) = system();
        let (mut s2, _, _, _) = system();
        let v1 = s1.eval(a, &e).unwrap();
        let v2 = s2.eval(a, &shared[0]).unwrap();
        assert!(forest_equiv(&v1, &v2));
        // and the shared plan moved the catalog across the wan only once
        assert!(s2.stats().link(b, a).bytes < s1.stats().link(b, a).bytes);
    }

    #[test]
    fn r14_relocates_anywhere_mentioned() {
        let (sys, a, b, _c) = system();
        let model = CostModel::from_system(&sys);
        let ctx = OptContext::new(&model);
        let e = Expr::Doc {
            name: "catalog".into(),
            at: PeerRef::At(b),
        };
        let rels = R14Relocate.apply_at(a, &e, &ctx);
        assert_eq!(rels.len(), 1);
        assert_equivalent(
            || {
                let (s, a, _, _) = system();
                (s, a)
            },
            &e,
            &rels[0],
        );
        // no stacking on EvalAt
        assert!(R14Relocate.apply_at(a, &rels[0], &ctx).is_empty());
    }

    #[test]
    fn r15_moves_sc_with_explicit_forward() {
        let (mut sys, a, b, c) = system();
        sys.register_declarative_service(b, "scan", r#"doc("catalog")//pkg/@name"#)
            .unwrap();
        sys.install_doc(c, "log", Tree::parse("<log/>").unwrap())
            .unwrap();
        let log_root = sys.peer(c).docs.get(&"log".into()).unwrap().tree().root();
        let model = CostModel::from_system(&sys);
        let ctx = OptContext::new(&model);
        let sc = Expr::Sc {
            provider: PeerRef::At(b),
            service: "scan".into(),
            params: vec![],
            forward: vec![axml_xml::ids::NodeAddr::new(c, "log", log_root)],
        };
        let moved = R15ScRelocate.apply_at(a, &sc, &ctx);
        assert_eq!(moved.len(), 2, "provider and forward peer are candidates");
        // Without a forward list, no relocation.
        let sc_default = Expr::Sc {
            provider: PeerRef::At(b),
            service: "scan".into(),
            params: vec![],
            forward: vec![],
        };
        assert!(R15ScRelocate.apply_at(a, &sc_default, &ctx).is_empty());
    }

    #[test]
    fn r16_composes_over_visible_services() {
        let (mut sys, a, b, _c) = system();
        sys.register_declarative_service(
            b,
            "all-pkgs",
            r#"for $p in doc("catalog")//pkg return {$p}"#,
        )
        .unwrap();
        let model = CostModel::from_system(&sys);
        let ctx = OptContext::new(&model);
        let outer = Query::parse(
            "fmt",
            r#"for $t in $0 where $t/size/text() > 5000 return <hit>{$t/@name}</hit>"#,
        )
        .unwrap();
        let e = Expr::Apply {
            query: LocatedQuery::new(outer, a),
            args: vec![Expr::Sc {
                provider: PeerRef::At(b),
                service: "all-pkgs".into(),
                params: vec![],
                forward: vec![],
            }],
        };
        let pushed = R16PushOverSc.apply_at(a, &e, &ctx);
        assert_eq!(pushed.len(), 1);
        // equivalence
        let build = || {
            let (mut s, a, b, c) = system();
            s.register_declarative_service(
                b,
                "all-pkgs",
                r#"for $p in doc("catalog")//pkg return {$p}"#,
            )
            .unwrap();
            let _ = c;
            (s, a)
        };
        let (mut s1, site) = build();
        let (mut s2, _) = build();
        let v1 = s1.eval(site, &e).unwrap();
        let v2 = s2.eval(site, &pushed[0]).unwrap();
        assert!(forest_equiv(&v1, &v2));
        // pushed plan ships far less over b→a
        assert!(s2.stats().link(b, a).bytes < s1.stats().link(b, a).bytes);
    }

    #[test]
    fn r9_enumerates_replicas() {
        let (mut sys, _a, b, c) = system();
        sys.catalog_mut().add_doc_replica("cat", b, "catalog");
        sys.catalog_mut().add_doc_replica("cat", c, "catalog-c");
        let model = CostModel::from_system(&sys);
        let ctx = OptContext::new(&model);
        let e = Expr::Doc {
            name: "cat".into(),
            at: PeerRef::Any,
        };
        let opts = R9Generic.apply_at(PeerId(0), &e, &ctx);
        assert_eq!(opts.len(), 2);
    }

    #[test]
    fn all_rewrites_reaches_nested_positions() {
        let (sys, a, b, _c) = system();
        let model = CostModel::from_system(&sys);
        let ctx = OptContext::new(&model);
        let rules = standard_rules();
        let naive = naive_apply(a, b);
        let rewrites = all_rewrites(&rules, a, &naive, &ctx);
        assert!(!rewrites.is_empty());
        // at least delegation and decomposition fire
        let names: Vec<_> = rewrites.iter().map(|(n, _)| *n).collect();
        assert!(names.contains(&"R10-delegate"), "{names:?}");
        assert!(names.contains(&"R11-push-selections"), "{names:?}");
        // nested: the Doc argument can itself be relocated (R14 at depth 1)
        assert!(names.contains(&"R14-relocate"), "{names:?}");
    }

    #[test]
    fn sigma_flags() {
        let rules = standard_rules();
        assert!(rule_preserves_sigma(&rules, "R10-delegate"));
        assert!(!rule_preserves_sigma(&rules, "R13-share-transfer"));
        assert!(rule_preserves_sigma(&rules, "unknown-rule"));
    }
}
