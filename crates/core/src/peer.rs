//! Per-peer state: the documents and services a peer hosts.
//!
//! §3.3 calls the union of these across all peers the system **state Σ**;
//! [`PeerState::snapshot`] contributes one peer's part of the Σ-comparison
//! used to test rule soundness (`eval@p1(e1)(Σ) = eval@p2(e2)(Σ)`).

use crate::error::{CoreError, CoreResult};
use crate::service::Service;
use axml_query::eval::DocResolver;
use axml_query::Query;
use axml_xml::equiv::{canonicalize, Canon};
use axml_xml::ids::{DocName, PeerId, QueryName, ServiceName};
use axml_xml::store::{DocStore, Document};
use axml_xml::tree::Tree;
use std::collections::BTreeMap;

/// The local state of one peer.
#[derive(Debug, Clone, Default)]
pub struct PeerState {
    /// Hosted documents.
    pub docs: DocStore,
    /// Registered services.
    pub services: BTreeMap<ServiceName, Service>,
    /// Named queries (definitions a peer owns but has not exposed as
    /// services).
    pub queries: BTreeMap<QueryName, Query>,
}

impl PeerState {
    /// An empty peer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Install a document (fails on name clash — §2.1 uniqueness).
    pub fn install_doc(&mut self, doc: Document) -> CoreResult<()> {
        self.docs.insert(doc)?;
        Ok(())
    }

    /// Fetch a document's tree.
    pub fn doc(&self, name: &DocName, here: PeerId) -> CoreResult<&Tree> {
        self.docs
            .get(name)
            .map(Document::tree)
            .ok_or_else(|| CoreError::NoSuchDoc {
                doc: name.clone(),
                at: here,
            })
    }

    /// Register a service (replacing any previous definition).
    pub fn register_service(&mut self, service: Service) {
        self.services.insert(service.name.clone(), service);
    }

    /// Look up a service.
    pub fn service(&self, name: &ServiceName, here: PeerId) -> CoreResult<&Service> {
        self.services
            .get(name)
            .ok_or_else(|| CoreError::NoSuchService {
                service: name.clone(),
                at: here,
            })
    }

    /// Register a named query.
    pub fn register_query(&mut self, name: impl Into<QueryName>, q: Query) {
        self.queries.insert(name.into(), q);
    }

    /// Look up a named query.
    pub fn query(&self, name: &QueryName) -> CoreResult<&Query> {
        self.queries
            .get(name)
            .ok_or_else(|| CoreError::NoSuchQuery(name.to_string()))
    }

    /// A canonical snapshot of this peer's documents (name → canonical
    /// form) and service names — one peer's contribution to Σ.
    pub fn snapshot(&self) -> PeerSnapshot {
        PeerSnapshot {
            docs: self
                .docs
                .iter()
                .map(|d| (d.name().clone(), canonicalize(d.tree(), d.tree().root())))
                .collect(),
            services: self.services.keys().cloned().collect(),
        }
    }
}

impl DocResolver for PeerState {
    fn resolve(&self, name: &DocName) -> Option<&Tree> {
        self.docs.get(name).map(Document::tree)
    }
}

/// Canonical image of one peer's state, comparable across runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PeerSnapshot {
    /// Documents by name, canonicalized (sibling order erased).
    pub docs: BTreeMap<DocName, Canon>,
    /// Installed service names.
    pub services: Vec<ServiceName>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn docs_and_services() {
        let mut p = PeerState::new();
        p.install_doc(Document::new("d", Tree::parse("<a/>").unwrap()))
            .unwrap();
        assert!(p
            .install_doc(Document::new("d", Tree::parse("<b/>").unwrap()))
            .is_err());
        assert!(p.doc(&"d".into(), PeerId(0)).is_ok());
        assert!(matches!(
            p.doc(&"missing".into(), PeerId(0)),
            Err(CoreError::NoSuchDoc { .. })
        ));
        let q = Query::parse("q", "$0//x").unwrap();
        p.register_service(Service::declarative("s", q.clone()));
        assert!(p.service(&"s".into(), PeerId(0)).is_ok());
        assert!(p.service(&"zz".into(), PeerId(0)).is_err());
        p.register_query("qq", q);
        assert!(p.query(&"qq".into()).is_ok());
        assert!(p.query(&"zz".into()).is_err());
    }

    #[test]
    fn snapshot_is_order_insensitive() {
        let mut a = PeerState::new();
        a.install_doc(Document::new("d", Tree::parse("<r><x/><y/></r>").unwrap()))
            .unwrap();
        let mut b = PeerState::new();
        b.install_doc(Document::new("d", Tree::parse("<r><y/><x/></r>").unwrap()))
            .unwrap();
        assert_eq!(a.snapshot(), b.snapshot());
        b.install_doc(Document::new("e", Tree::parse("<z/>").unwrap()))
            .unwrap();
        assert_ne!(a.snapshot(), b.snapshot());
    }

    #[test]
    fn doc_resolver_impl() {
        let mut p = PeerState::new();
        p.install_doc(Document::new("cat", Tree::parse("<c><pkg/></c>").unwrap()))
            .unwrap();
        let q = Query::parse("q", r#"doc("cat")//pkg"#).unwrap();
        let out = q.eval_with_docs(&[], &p).unwrap();
        assert_eq!(out.len(), 1);
    }
}
