//! Generic documents/services and the `pickDoc`/`pickService` functions —
//! §2.3 and definition (9).
//!
//! A generic reference `d@any` denotes *any* member of an equivalence
//! class of replicas. The [`Catalog`] records the classes; a
//! [`PickPolicy`] implements the paper's *"the implementation of an actual
//! pick function at p depends on p's knowledge of the existing documents
//! and services, p's preferences etc."* — we provide the obvious policies
//! and benchmark them against each other (experiment E7).

use crate::error::{CoreError, CoreResult};
use axml_net::transport::Transport;
use axml_net::Payload;
use axml_prng::SplitMix64;
use axml_xml::ids::{DocName, PeerId, ServiceName};
use std::collections::BTreeMap;

/// How a peer picks among the members of an equivalence class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PickPolicy {
    /// The first registered replica (registration order).
    First,
    /// The replica with the cheapest link from the picking peer (for a
    /// nominal 64 KiB transfer).
    Closest,
    /// Uniformly random with the given seed (deterministic runs).
    Random(u64),
    /// Round-robin over the class (spreads load).
    RoundRobin,
}

/// The distributed catalog of equivalence classes.
///
/// The paper deliberately abstracts the network structure (*"we make no
/// assumption about the structure of the peer network, e.g. whether a
/// DHT-style index is present"*); the catalog models whatever lookup
/// facility exists, and the cost model can charge a lookup if desired.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    docs: BTreeMap<DocName, Vec<(PeerId, DocName)>>,
    services: BTreeMap<ServiceName, Vec<(PeerId, ServiceName)>>,
    rr_state: BTreeMap<DocName, usize>,
    rr_state_svc: BTreeMap<ServiceName, usize>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declare `concrete@peer` a member of the document class `class`.
    pub fn add_doc_replica(
        &mut self,
        class: impl Into<DocName>,
        peer: PeerId,
        concrete: impl Into<DocName>,
    ) {
        self.docs
            .entry(class.into())
            .or_default()
            .push((peer, concrete.into()));
    }

    /// Declare `concrete@peer` a member of the service class `class`.
    pub fn add_service_replica(
        &mut self,
        class: impl Into<ServiceName>,
        peer: PeerId,
        concrete: impl Into<ServiceName>,
    ) {
        self.services
            .entry(class.into())
            .or_default()
            .push((peer, concrete.into()));
    }

    /// Members of a document class.
    pub fn doc_replicas(&self, class: &DocName) -> &[(PeerId, DocName)] {
        self.docs.get(class).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Members of a service class.
    pub fn service_replicas(&self, class: &ServiceName) -> &[(PeerId, ServiceName)] {
        self.services.get(class).map(Vec::as_slice).unwrap_or(&[])
    }

    /// All document classes with their members.
    pub fn doc_classes(&self) -> Vec<(DocName, Vec<(PeerId, DocName)>)> {
        self.docs
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }

    /// All service classes with their members.
    pub fn service_classes(&self) -> Vec<(ServiceName, Vec<(PeerId, ServiceName)>)> {
        self.services
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }

    /// `pickDoc(d@any)` evaluated at `at` — definition (9).
    pub fn pick_doc<M: Payload>(
        &mut self,
        policy: PickPolicy,
        at: PeerId,
        class: &DocName,
        net: &dyn Transport<M>,
    ) -> CoreResult<(PeerId, DocName)> {
        let members = self
            .docs
            .get(class)
            .filter(|v| !v.is_empty())
            .ok_or_else(|| CoreError::EmptyEquivalenceClass(class.to_string()))?;
        let idx = pick_index(
            policy,
            at,
            members.iter().map(|(p, _)| *p),
            net,
            self.rr_state.entry(class.clone()).or_insert(0),
        );
        Ok(members[idx].clone())
    }

    /// `pickDoc(d@any)` restricted to *live* candidates: members whose
    /// peer is not in `excluded` and is currently reachable from `at`
    /// (link administratively up, no fault-plan outage, peer not
    /// crashed). This is the failover variant of [`Catalog::pick_doc`]:
    /// the engine excludes replicas it has already failed to reach and
    /// re-picks among the rest.
    pub fn pick_doc_excluding<M: Payload>(
        &mut self,
        policy: PickPolicy,
        at: PeerId,
        class: &DocName,
        net: &dyn Transport<M>,
        excluded: &[PeerId],
    ) -> CoreResult<(PeerId, DocName)> {
        let members = self
            .docs
            .get(class)
            .ok_or_else(|| CoreError::EmptyEquivalenceClass(class.to_string()))?;
        let live: Vec<(PeerId, DocName)> = members
            .iter()
            .filter(|(p, _)| !excluded.contains(p) && net.reachable(at, *p))
            .cloned()
            .collect();
        if live.is_empty() {
            return Err(CoreError::EmptyEquivalenceClass(class.to_string()));
        }
        let idx = pick_index(
            policy,
            at,
            live.iter().map(|(p, _)| *p),
            net,
            self.rr_state.entry(class.clone()).or_insert(0),
        );
        Ok(live[idx].clone())
    }

    /// `pickService(s@any)` evaluated at `at`.
    pub fn pick_service<M: Payload>(
        &mut self,
        policy: PickPolicy,
        at: PeerId,
        class: &ServiceName,
        net: &dyn Transport<M>,
    ) -> CoreResult<(PeerId, ServiceName)> {
        let members = self
            .services
            .get(class)
            .filter(|v| !v.is_empty())
            .ok_or_else(|| CoreError::EmptyEquivalenceClass(class.to_string()))?;
        let idx = pick_index(
            policy,
            at,
            members.iter().map(|(p, _)| *p),
            net,
            self.rr_state_svc.entry(class.clone()).or_insert(0),
        );
        Ok(members[idx].clone())
    }

    /// `pickService(s@any)` restricted to live candidates — the failover
    /// variant of [`Catalog::pick_service`]; see
    /// [`Catalog::pick_doc_excluding`].
    pub fn pick_service_excluding<M: Payload>(
        &mut self,
        policy: PickPolicy,
        at: PeerId,
        class: &ServiceName,
        net: &dyn Transport<M>,
        excluded: &[PeerId],
    ) -> CoreResult<(PeerId, ServiceName)> {
        let members = self
            .services
            .get(class)
            .ok_or_else(|| CoreError::EmptyEquivalenceClass(class.to_string()))?;
        let live: Vec<(PeerId, ServiceName)> = members
            .iter()
            .filter(|(p, _)| !excluded.contains(p) && net.reachable(at, *p))
            .cloned()
            .collect();
        if live.is_empty() {
            return Err(CoreError::EmptyEquivalenceClass(class.to_string()));
        }
        let idx = pick_index(
            policy,
            at,
            live.iter().map(|(p, _)| *p),
            net,
            self.rr_state_svc.entry(class.clone()).or_insert(0),
        );
        Ok(live[idx].clone())
    }
}

const NOMINAL_BYTES: usize = 64 * 1024;

fn pick_index<M: Payload>(
    policy: PickPolicy,
    at: PeerId,
    peers: impl Iterator<Item = PeerId>,
    net: &dyn Transport<M>,
    rr: &mut usize,
) -> usize {
    let peers: Vec<PeerId> = peers.collect();
    match policy {
        PickPolicy::First => 0,
        PickPolicy::Closest => peers
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| {
                let ca = net.link(at, **a).transfer_ms(NOMINAL_BYTES);
                let cb = net.link(at, **b).transfer_ms(NOMINAL_BYTES);
                ca.partial_cmp(&cb).unwrap_or(std::cmp::Ordering::Equal)
            })
            .map(|(i, _)| i)
            .unwrap_or(0),
        PickPolicy::Random(seed) => {
            // Derive the choice from the seed, the site and the class size
            // so repeated picks are deterministic but well spread.
            let mut rng = SplitMix64::new(seed ^ ((at.0 as u64) << 32) ^ *rr as u64);
            *rr += 1;
            rng.gen_range(0..peers.len())
        }
        PickPolicy::RoundRobin => {
            let i = *rr % peers.len();
            *rr += 1;
            i
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use axml_net::link::LinkCost;
    use axml_net::sim::SimTransport as Network;

    fn net3() -> Network<String> {
        let mut net: Network<String> = Network::new();
        let a = net.add_peer("a");
        let b = net.add_peer("b");
        let c = net.add_peer("c");
        net.set_link(a, b, LinkCost::slow());
        net.set_link(a, c, LinkCost::lan());
        net.set_link(b, c, LinkCost::wan());
        net
    }

    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        cat.add_doc_replica("cat", PeerId(1), "cat-on-b");
        cat.add_doc_replica("cat", PeerId(2), "cat-on-c");
        cat
    }

    #[test]
    fn first_policy() {
        let net = net3();
        let mut cat = catalog();
        let (p, name) = cat
            .pick_doc(PickPolicy::First, PeerId(0), &"cat".into(), &net)
            .unwrap();
        assert_eq!((p, name.as_str()), (PeerId(1), "cat-on-b"));
    }

    #[test]
    fn closest_policy_prefers_cheap_link() {
        let net = net3();
        let mut cat = catalog();
        let (p, _) = cat
            .pick_doc(PickPolicy::Closest, PeerId(0), &"cat".into(), &net)
            .unwrap();
        assert_eq!(p, PeerId(2), "lan link to c beats slow link to b");
    }

    #[test]
    fn excluding_pick_skips_dead_and_unreachable_replicas() {
        let mut net = net3();
        let mut cat = catalog();
        // Excluding the closest replica re-picks the other one.
        let (p, name) = cat
            .pick_doc_excluding(
                PickPolicy::Closest,
                PeerId(0),
                &"cat".into(),
                &net,
                &[PeerId(2)],
            )
            .unwrap();
        assert_eq!((p, name.as_str()), (PeerId(1), "cat-on-b"));
        // An unreachable replica is skipped even when not excluded.
        net.fail_link(PeerId(0), PeerId(1));
        let err = cat
            .pick_doc_excluding(
                PickPolicy::Closest,
                PeerId(0),
                &"cat".into(),
                &net,
                &[PeerId(2)],
            )
            .unwrap_err();
        assert!(matches!(err, CoreError::EmptyEquivalenceClass(_)));
        // With nothing excluded, the down link still filters b out.
        let (p, _) = cat
            .pick_doc_excluding(PickPolicy::First, PeerId(0), &"cat".into(), &net, &[])
            .unwrap();
        assert_eq!(p, PeerId(2), "down link to b filters it out");
    }

    #[test]
    fn round_robin_cycles() {
        let net = net3();
        let mut cat = catalog();
        let p1 = cat
            .pick_doc(PickPolicy::RoundRobin, PeerId(0), &"cat".into(), &net)
            .unwrap()
            .0;
        let p2 = cat
            .pick_doc(PickPolicy::RoundRobin, PeerId(0), &"cat".into(), &net)
            .unwrap()
            .0;
        let p3 = cat
            .pick_doc(PickPolicy::RoundRobin, PeerId(0), &"cat".into(), &net)
            .unwrap()
            .0;
        assert_ne!(p1, p2);
        assert_eq!(p1, p3);
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let net = net3();
        let pick = |seed| {
            let mut cat = catalog();
            (0..5)
                .map(|_| {
                    cat.pick_doc(PickPolicy::Random(seed), PeerId(0), &"cat".into(), &net)
                        .unwrap()
                        .0
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(pick(42), pick(42));
    }

    #[test]
    fn empty_class_errors() {
        let net = net3();
        let mut cat = Catalog::new();
        assert!(matches!(
            cat.pick_doc(PickPolicy::First, PeerId(0), &"none".into(), &net),
            Err(CoreError::EmptyEquivalenceClass(_))
        ));
        assert!(cat
            .pick_service(PickPolicy::First, PeerId(0), &"none".into(), &net)
            .is_err());
    }

    #[test]
    fn service_classes() {
        let net = net3();
        let mut cat = Catalog::new();
        cat.add_service_replica("search", PeerId(1), "search-b");
        cat.add_service_replica("search", PeerId(2), "search-c");
        assert_eq!(cat.service_replicas(&"search".into()).len(), 2);
        let (p, _) = cat
            .pick_service(PickPolicy::Closest, PeerId(0), &"search".into(), &net)
            .unwrap();
        assert_eq!(p, PeerId(2));
    }

    #[test]
    fn replica_introspection() {
        let cat = catalog();
        assert_eq!(cat.doc_replicas(&"cat".into()).len(), 2);
        assert!(cat.doc_replicas(&"other".into()).is_empty());
    }
}
