//! `sc` elements inside AXML documents — §2.2 and the §2.3 extensions.
//!
//! An AXML document is an XML document in which some elements are labeled
//! `sc` (service call). An `sc` element has children:
//!
//! * `<peer>` — the providing peer (`p3`) or `any` (generic services),
//! * `<service>` — the service name,
//! * `<param1> … <paramN>` — the call parameters (arbitrary XML, possibly
//!   themselves containing `sc` elements),
//! * `<forw>` — zero or more forward targets `doc#node@pK` (§2.3: where
//!   the results should accumulate; default = the `sc`'s parent),
//! * optional `@id` and `@after` attributes implementing the activation
//!   chain of §2.2 (*"a call must be activated just after a response to
//!   another activated call has been received"*), and an optional
//!   `@mode="lazy"` for calls activated only when a query needs them.

use crate::error::{CoreError, CoreResult};
use crate::expr::{format_addr, parse_addr};
use axml_xml::ids::{NodeAddr, PeerId, ServiceName};
use axml_xml::tree::{NodeId, Tree};

/// The label marking service-call elements.
pub const SC_LABEL: &str = "sc";

/// When an embedded call fires.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum ActivationMode {
    /// Activate as soon as the document is installed / evaluated.
    #[default]
    Immediate,
    /// Activate only when a query over the document needs the result
    /// (lazy AXML, reference \[2\] of the paper).
    Lazy,
    /// Activate after each response of the call with the given id
    /// (continuous chaining, §2.2).
    After(String),
}

/// A provider reference in a document: concrete or generic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScProvider {
    /// A concrete peer.
    Peer(PeerId),
    /// `any` — resolved through the generic-service catalog.
    Any,
}

/// A parsed `sc` element.
#[derive(Debug, Clone, PartialEq)]
pub struct ScNode {
    /// Optional identifier (used by `@after` chains).
    pub id: Option<String>,
    /// The provider.
    pub provider: ScProvider,
    /// The service to call.
    pub service: ServiceName,
    /// Parameter subtrees (copies).
    pub params: Vec<Tree>,
    /// Forward list; empty = default (the `sc`'s parent).
    pub forward: Vec<NodeAddr>,
    /// Activation mode.
    pub mode: ActivationMode,
}

impl ScNode {
    /// Is this node an `sc` element?
    pub fn is_sc(tree: &Tree, node: NodeId) -> bool {
        tree.label(node).is_some_and(|l| l.as_str() == SC_LABEL)
    }

    /// Parse the `sc` element at `node`.
    pub fn parse(tree: &Tree, node: NodeId) -> CoreResult<ScNode> {
        if !Self::is_sc(tree, node) {
            return Err(CoreError::Malformed("not an <sc> element".into()));
        }
        let peer_el = tree
            .first_child_labeled(node, "peer")
            .ok_or_else(|| CoreError::Malformed("<sc> lacks <peer>".into()))?;
        let provider = match tree.text(peer_el).as_str() {
            "any" => ScProvider::Any,
            s => ScProvider::Peer(PeerId(
                s.trim_start_matches('p')
                    .parse()
                    .map_err(|_| CoreError::Malformed(format!("bad <peer> `{s}`")))?,
            )),
        };
        let svc_el = tree
            .first_child_labeled(node, "service")
            .ok_or_else(|| CoreError::Malformed("<sc> lacks <service>".into()))?;
        let service = ServiceName::new(tree.text(svc_el));
        let mut params = Vec::new();
        for i in 1.. {
            match tree.first_child_labeled(node, &format!("param{i}")) {
                Some(pe) => {
                    let inner = tree.children(pe);
                    if inner.len() != 1 {
                        return Err(CoreError::Malformed(format!(
                            "<param{i}> must wrap exactly one tree"
                        )));
                    }
                    // Zero-copy view into the host document's arena.
                    params.push(tree.subtree(inner[0])?);
                }
                None => break,
            }
        }
        let forward = tree
            .children_labeled(node, "forw")
            .map(|c| parse_addr(&tree.text(c)))
            .collect::<CoreResult<Vec<_>>>()?;
        let mode = match (tree.attr(node, "mode"), tree.attr(node, "after")) {
            (_, Some(after)) => ActivationMode::After(after.to_string()),
            (Some("lazy"), None) => ActivationMode::Lazy,
            (Some("immediate") | None, None) => ActivationMode::Immediate,
            (Some(other), None) => {
                return Err(CoreError::Malformed(format!("unknown @mode `{other}`")))
            }
        };
        Ok(ScNode {
            id: tree.attr(node, "id").map(str::to_string),
            provider,
            service,
            params,
            forward,
            mode,
        })
    }

    /// Append this call as an `sc` child of `parent` in `tree`; returns
    /// the new element.
    pub fn write(&self, tree: &mut Tree, parent: NodeId) -> NodeId {
        let sc = tree.add_element(parent, SC_LABEL);
        if let Some(id) = &self.id {
            tree.set_attr(sc, "id", id.clone()).expect("element");
        }
        match &self.mode {
            ActivationMode::Immediate => {}
            ActivationMode::Lazy => {
                tree.set_attr(sc, "mode", "lazy").expect("element");
            }
            ActivationMode::After(a) => {
                tree.set_attr(sc, "after", a.clone()).expect("element");
            }
        }
        let provider = match self.provider {
            ScProvider::Peer(p) => p.to_string(),
            ScProvider::Any => "any".to_string(),
        };
        tree.add_text_element(sc, "peer", provider);
        tree.add_text_element(sc, "service", self.service.as_str());
        for (i, p) in self.params.iter().enumerate() {
            let pe = tree.add_element(sc, format!("param{}", i + 1).as_str());
            tree.graft(pe, p, p.root())
                .expect("param wrapper is an element");
        }
        for a in &self.forward {
            tree.add_text_element(sc, "forw", format_addr(a));
        }
        sc
    }

    /// The params' parameter subtrees, wrapped in a fresh `<sc>`-rooted
    /// tree (round-trip helper).
    pub fn to_tree(&self) -> Tree {
        let mut t = Tree::new("holder");
        let root = t.root();
        let sc = self.write(&mut t, root);
        t.subtree(sc).expect("freshly written node is valid")
    }

    /// Find every `sc` element in the subtree of `node` (preorder),
    /// excluding `sc` elements nested inside another `sc`'s parameters
    /// (those activate with the inner call, not now).
    pub fn find_all(tree: &Tree, node: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        fn walk(tree: &Tree, n: NodeId, out: &mut Vec<NodeId>) {
            if ScNode::is_sc(tree, n) {
                out.push(n);
                return; // don't descend into params
            }
            for &c in tree.children(n) {
                walk(tree, c, out);
            }
        }
        walk(tree, node, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use axml_xml::tree::NodeId as N;

    fn sample() -> ScNode {
        ScNode {
            id: Some("c1".into()),
            provider: ScProvider::Peer(PeerId(2)),
            service: "lookup".into(),
            params: vec![
                Tree::parse("<q>vim</q>").unwrap(),
                Tree::parse("<opts><max>10</max></opts>").unwrap(),
            ],
            forward: vec![NodeAddr::new(PeerId(0), "inbox", N::from_index(0).unwrap())],
            mode: ActivationMode::After("c0".into()),
        }
    }

    #[test]
    fn write_parse_roundtrip() {
        let sc = sample();
        let t = sc.to_tree();
        let back = ScNode::parse(&t, t.root()).unwrap();
        assert_eq!(sc, back);
    }

    #[test]
    fn roundtrip_generic_and_defaults() {
        let sc = ScNode {
            id: None,
            provider: ScProvider::Any,
            service: "search".into(),
            params: vec![],
            forward: vec![],
            mode: ActivationMode::Immediate,
        };
        let t = sc.to_tree();
        let back = ScNode::parse(&t, t.root()).unwrap();
        assert_eq!(sc, back);
    }

    #[test]
    fn lazy_mode_roundtrip() {
        let sc = ScNode {
            mode: ActivationMode::Lazy,
            id: None,
            ..sample()
        };
        let t = sc.to_tree();
        assert_eq!(
            ScNode::parse(&t, t.root()).unwrap().mode,
            ActivationMode::Lazy
        );
    }

    #[test]
    fn parse_from_handwritten_xml() {
        let t = Tree::parse(
            r#"<sc><peer>p3</peer><service>news</service>
               <param1><topic>db</topic></param1>
               <forw>feed#0@p0</forw></sc>"#,
        )
        .unwrap();
        let sc = ScNode::parse(&t, t.root()).unwrap();
        assert_eq!(sc.provider, ScProvider::Peer(PeerId(3)));
        assert_eq!(sc.service.as_str(), "news");
        assert_eq!(sc.params.len(), 1);
        assert_eq!(sc.params[0].serialize(), "<topic>db</topic>");
        assert_eq!(sc.forward.len(), 1);
        assert_eq!(sc.forward[0].peer, PeerId(0));
    }

    #[test]
    fn malformed_rejected() {
        for bad in [
            "<sc/>",
            "<sc><peer>p0</peer></sc>",
            "<sc><peer>zz</peer><service>s</service></sc>",
            "<notsc/>",
            r#"<sc mode="weird"><peer>p0</peer><service>s</service></sc>"#,
        ] {
            let t = Tree::parse(bad).unwrap();
            assert!(ScNode::parse(&t, t.root()).is_err(), "{bad}");
        }
    }

    #[test]
    fn find_all_skips_nested_params() {
        let t = Tree::parse(
            r#"<doc>
                 <sc><peer>p1</peer><service>a</service>
                   <param1><sc><peer>p2</peer><service>inner</service></sc></param1>
                 </sc>
                 <data/>
                 <sc><peer>p2</peer><service>b</service></sc>
               </doc>"#,
        )
        .unwrap();
        let found = ScNode::find_all(&t, t.root());
        assert_eq!(found.len(), 2);
        let services: Vec<_> = found
            .iter()
            .map(|&n| ScNode::parse(&t, n).unwrap().service.to_string())
            .collect();
        assert_eq!(services, ["a", "b"]);
    }
}
