//! Expression evaluation — definitions (1)–(9) of §3.2.
//!
//! `eval@p(e)` is implemented as [`AxmlSystem::eval`]`(p, e)`. It returns
//! the forest that materializes **at peer `p`** and performs every side
//! effect the paper describes: data/query shipping as real (simulated)
//! messages, results accumulating under forward-list nodes, new documents
//! and services installed.
//!
//! Since the engine redesign this function is a thin blocking wrapper:
//! it opens one `crate::engine::EvalSession`, seeds it with a single
//! root task, and drives the session to quiescence. The actual
//! definition-by-definition decomposition lives in [`crate::engine`].
//!
//! Mapping to the paper's definitions:
//!
//! | def. | case |
//! |------|------|
//! | (1)  | [`crate::expr::Expr::Tree`] at `p` — copy the tree, activating embedded `sc` nodes |
//! | (2)  | [`crate::expr::Expr::Apply`] with a local definition |
//! | (3)  | [`crate::expr::Expr::Send`] to a peer — value ∅, data moves |
//! | (4)  | `Send` to a node list — appended under each `n@p` |
//! | (5)  | `Tree`/`Doc` located remotely — the remote peer evaluates and ships back |
//! | (6)  | [`crate::expr::Expr::Sc`] — params to provider, provider applies its query, results to the forward list |
//! | (7)  | `Apply` with a remote definition — query and arguments shipped to the evaluation site |
//! | (8)  | [`crate::expr::Expr::Deploy`] — a shipped query becomes a new service |
//! | (9)  | `PeerRef::Any` / `ScProvider::Any` resolved via `pickDoc`/`pickService` |
//!
//! Simplifications vs. a production deployment (documented in DESIGN.md):
//! evaluation is one-shot over current state (continuous propagation is in
//! [`crate::continuous`]); remote evaluation requests ship the serialized
//! expression and are charged like any other message. Independent
//! transfers **overlap**: each directed link is a resource that carries
//! one message at a time, so a fan-out's makespan is its critical path
//! while strictly sequential chains (request → response) keep the exact
//! timing of a depth-first evaluator.

use crate::engine::Runnable;
use crate::error::CoreResult;
use crate::expr::Expr;
use crate::system::AxmlSystem;
use axml_xml::ids::PeerId;
use axml_xml::tree::{NodeId, Tree};

impl AxmlSystem {
    /// `eval@at(expr)` — evaluate the expression at a peer, returning the
    /// forest left there. Blocks until the session is quiescent (every
    /// task run, every in-flight message delivered).
    pub fn eval(&mut self, at: PeerId, expr: &Expr) -> CoreResult<Vec<Tree>> {
        self.check_peer(at)?;
        let mut s = self.new_session();
        let root = s.new_slot(1);
        self.schedule(
            &mut s,
            Runnable::Eval {
                at,
                expr: expr.clone(),
                out: (root, 0),
            },
        );
        self.run_session(&mut s)?;
        Ok(s.take(root)?)
    }
}

/// Find a node id inside a document by a simple label path (test/bench
/// helper for building forward lists).
pub fn node_by_path(tree: &Tree, path: &[&str]) -> Option<NodeId> {
    let mut cur = tree.root();
    for label in path {
        cur = tree.first_child_labeled(cur, label)?;
    }
    Some(cur)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::CoreError;
    use crate::expr::{LocatedQuery, PeerRef, SendDest};
    use axml_net::link::LinkCost;
    use axml_query::Query;
    use axml_xml::equiv::forest_equiv;
    use axml_xml::ids::NodeAddr;

    fn catalog_xml() -> &'static str {
        r#"<catalog>
             <pkg name="vim"><size>4000</size></pkg>
             <pkg name="gcc"><size>90000</size></pkg>
             <pkg name="vi"><size>100</size></pkg>
           </catalog>"#
    }

    fn two_peer_system() -> (AxmlSystem, PeerId, PeerId) {
        let mut sys = AxmlSystem::new();
        let a = sys.add_peer("client");
        let b = sys.add_peer("server");
        sys.net_mut().set_link(a, b, LinkCost::wan());
        sys.install_doc(b, "catalog", Tree::parse(catalog_xml()).unwrap())
            .unwrap();
        (sys, a, b)
    }

    #[test]
    fn unfilled_slot_is_a_lost_result_not_an_empty_one() {
        use crate::error::EngineError;
        // A slot part nothing ever wrote to must surface as a typed
        // error: with deliveries coming from worker threads, silently
        // turning a lost delivery into an empty forest would be the
        // worst kind of bug to chase.
        let mut sys = AxmlSystem::new();
        sys.add_peer("a");
        let mut s = sys.new_session();
        let slot = s.new_slot(1);
        assert_eq!(s.take(slot), Err(EngineError::LostResult { slot, part: 0 }));
        // ...whereas an *empty forest* part is a perfectly valid result.
        let a = PeerId(0);
        let out = sys
            .eval(
                a,
                &Expr::Apply {
                    query: LocatedQuery::new(
                        Query::parse("none", "for $p in $0//nope return {$p}").unwrap(),
                        a,
                    ),
                    args: vec![Expr::Tree {
                        tree: Tree::parse("<x/>").unwrap(),
                        at: a,
                    }],
                },
            )
            .unwrap();
        assert!(out.is_empty(), "empty forest results stay Ok");
    }

    #[test]
    fn def1_local_tree_is_identity() {
        let mut sys = AxmlSystem::new();
        let a = sys.add_peer("a");
        let t = Tree::parse("<x><y>1</y></x>").unwrap();
        let out = sys
            .eval(
                a,
                &Expr::Tree {
                    tree: t.clone(),
                    at: a,
                },
            )
            .unwrap();
        assert!(forest_equiv(&out, &[t]));
        assert_eq!(sys.stats().total_messages(), 0, "local eval is free");
    }

    #[test]
    fn def5_remote_doc_fetch() {
        let (mut sys, a, _b) = two_peer_system();
        let out = sys
            .eval(
                a,
                &Expr::Doc {
                    name: "catalog".into(),
                    at: PeerRef::At(PeerId(1)),
                },
            )
            .unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(
            out[0].serialized_size(),
            Tree::parse(catalog_xml()).unwrap().serialized_size()
        );
        // request + data back
        assert_eq!(sys.stats().total_messages(), 2);
        assert!(sys.stats().total_bytes() > out[0].serialized_size() as u64);
    }

    #[test]
    fn def2_local_query_on_remote_doc_def7_style() {
        let (mut sys, a, b) = two_peer_system();
        let q = Query::parse(
            "big",
            r#"for $p in $0//pkg where $p/size/text() > 1000 return {$p/@name}"#,
        )
        .unwrap();
        let e = Expr::Apply {
            query: LocatedQuery::new(q, a),
            args: vec![Expr::Doc {
                name: "catalog".into(),
                at: PeerRef::At(b),
            }],
        };
        let out = sys.eval(a, &e).unwrap();
        assert_eq!(out.len(), 2);
        // naive strategy ships the whole catalog to a
        let whole = Tree::parse(catalog_xml()).unwrap().serialized_size() as u64;
        assert!(sys.stats().link(b, a).bytes >= whole);
    }

    #[test]
    fn delegation_ships_less_for_selective_queries() {
        // The rule-10/11 rewritten plan: push the selection to the data.
        // Needs a catalog large enough that data dwarfs the shipped plan —
        // the optimizer's cost model captures exactly this crossover.
        let mut sys = AxmlSystem::new();
        let a = sys.add_peer("client");
        let b = sys.add_peer("server");
        sys.net_mut().set_link(a, b, LinkCost::wan());
        let mut big = String::from("<catalog>");
        for i in 0..200 {
            big.push_str(&format!(
                r#"<pkg name="pkg{i}"><size>{}</size><desc>a package with a long description {i}</desc></pkg>"#,
                if i % 50 == 0 { 5000 } else { 10 }
            ));
        }
        big.push_str("</catalog>");
        sys.install_doc(b, "catalog", Tree::parse(&big).unwrap())
            .unwrap();
        let q = Query::parse(
            "big",
            r#"for $p in $0//pkg where $p/size/text() > 1000 return {$p/@name}"#,
        )
        .unwrap();
        let naive = Expr::Apply {
            query: LocatedQuery::new(q.clone(), a),
            args: vec![Expr::Doc {
                name: "catalog".into(),
                at: PeerRef::At(b),
            }],
        };
        let out_naive = sys.eval(a, &naive).unwrap();
        let naive_bytes = sys.stats().total_bytes();
        sys.reset_stats();

        let delegated = Expr::EvalAt {
            peer: b,
            expr: Box::new(Expr::Send {
                dest: SendDest::Peer(a),
                payload: Box::new(Expr::Apply {
                    query: LocatedQuery::new(q, a),
                    args: vec![Expr::Doc {
                        name: "catalog".into(),
                        at: PeerRef::At(b),
                    }],
                }),
            }),
        };
        let out_del = sys.eval(a, &delegated).unwrap();
        let del_bytes = sys.stats().total_bytes();
        assert!(forest_equiv(&out_naive, &out_del));
        assert!(
            del_bytes < naive_bytes,
            "delegation must ship less: {del_bytes} vs {naive_bytes}"
        );
    }

    #[test]
    fn def3_send_to_peer_returns_empty() {
        let (mut sys, a, b) = two_peer_system();
        let e = Expr::Send {
            dest: SendDest::Peer(a),
            payload: Box::new(Expr::Doc {
                name: "catalog".into(),
                at: PeerRef::At(b),
            }),
        };
        // evaluated at b: catalog local, shipped to a, value ∅ at b
        let out = sys.eval(b, &e).unwrap();
        assert!(out.is_empty());
        assert_eq!(sys.stats().link(b, a).messages, 1);
    }

    #[test]
    fn def4_send_to_nodes_appends() {
        let (mut sys, a, b) = two_peer_system();
        sys.install_doc(a, "inbox", Tree::parse("<inbox><new/></inbox>").unwrap())
            .unwrap();
        let inbox_tree = sys.peer(a).docs.get(&"inbox".into()).unwrap().tree();
        let target = node_by_path(inbox_tree, &["new"]).unwrap();
        let e = Expr::Send {
            dest: SendDest::Nodes(vec![NodeAddr::new(a, "inbox", target)]),
            payload: Box::new(Expr::Tree {
                tree: Tree::parse("<alert>hi</alert>").unwrap(),
                at: b,
            }),
        };
        let out = sys.eval(b, &e).unwrap();
        assert!(out.is_empty());
        let inbox = sys.peer(a).docs.get(&"inbox".into()).unwrap().tree();
        assert_eq!(
            inbox.serialize(),
            "<inbox><new><alert>hi</alert></new></inbox>"
        );
    }

    #[test]
    fn send_new_doc_installs_and_respects_uniqueness() {
        let (mut sys, a, b) = two_peer_system();
        let e = Expr::Send {
            dest: SendDest::NewDoc {
                peer: a,
                name: "copy".into(),
            },
            payload: Box::new(Expr::Doc {
                name: "catalog".into(),
                at: PeerRef::At(b),
            }),
        };
        sys.eval(b, &e).unwrap();
        assert!(sys.peer(a).docs.contains(&"copy".into()));
        // the same name again violates §2.1 uniqueness
        assert!(sys.eval(b, &e).is_err());
    }

    #[test]
    fn def6_service_call_roundtrip() {
        let (mut sys, a, b) = two_peer_system();
        sys.register_declarative_service(
            b,
            "lookup",
            r#"for $p in doc("catalog")//pkg where $p/@name = $0/text() return {$p/size}"#,
        )
        .unwrap();
        let e = Expr::Sc {
            provider: PeerRef::At(b),
            service: "lookup".into(),
            params: vec![Expr::Tree {
                tree: Tree::parse("<q>gcc</q>").unwrap(),
                at: a,
            }],
            forward: vec![],
        };
        let out = sys.eval(a, &e).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].serialize(), "<size>90000</size>");
        // invoke + response
        assert_eq!(sys.stats().total_messages(), 2);
    }

    #[test]
    fn def6_forward_list_redirects_results() {
        let (mut sys, a, b) = two_peer_system();
        let c = sys.add_peer("archive");
        sys.install_doc(c, "log", Tree::parse("<log/>").unwrap())
            .unwrap();
        sys.register_declarative_service(b, "scan", r#"doc("catalog")//pkg/@name"#)
            .unwrap();
        let log_root = sys.peer(c).docs.get(&"log".into()).unwrap().tree().root();
        let e = Expr::Sc {
            provider: PeerRef::At(b),
            service: "scan".into(),
            params: vec![],
            forward: vec![NodeAddr::new(c, "log", log_root)],
        };
        let out = sys.eval(a, &e).unwrap();
        assert!(out.is_empty(), "results went to the forward list");
        let log = sys.peer(c).docs.get(&"log".into()).unwrap().tree();
        assert_eq!(log.children(log.root()).len(), 3);
        // nothing shipped back to the caller
        assert_eq!(sys.stats().link(b, a).messages, 0);
        assert_eq!(sys.stats().link(b, c).messages, 1);
    }

    #[test]
    fn def8_deploy_creates_service() {
        let (mut sys, a, b) = two_peer_system();
        let q = Query::parse("sel", r#"for $p in doc("catalog")//pkg return {$p/@name}"#).unwrap();
        sys.eval(
            a,
            &Expr::Deploy {
                to: b,
                query: LocatedQuery::new(q, a),
                as_service: "names".into(),
            },
        )
        .unwrap();
        assert!(sys.peer(b).services.contains_key(&"names".into()));
        // and the deployed service is callable
        let out = sys
            .eval(
                a,
                &Expr::Sc {
                    provider: PeerRef::At(b),
                    service: "names".into(),
                    params: vec![],
                    forward: vec![],
                },
            )
            .unwrap();
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn def9_generic_doc_resolution() {
        let mut sys = AxmlSystem::new();
        let a = sys.add_peer("a");
        let b = sys.add_peer("b");
        let c = sys.add_peer("c");
        sys.net_mut().set_link(a, b, LinkCost::slow());
        sys.net_mut().set_link(a, c, LinkCost::lan());
        sys.install_replica(b, "cat", "cat-b", Tree::parse("<c><p>1</p></c>").unwrap())
            .unwrap();
        sys.install_replica(c, "cat", "cat-c", Tree::parse("<c><p>1</p></c>").unwrap())
            .unwrap();
        sys.set_pick_policy(crate::pick::PickPolicy::Closest);
        let out = sys
            .eval(
                a,
                &Expr::Doc {
                    name: "cat".into(),
                    at: PeerRef::Any,
                },
            )
            .unwrap();
        assert_eq!(out.len(), 1);
        // fetched from c (the cheap link), not b
        assert!(sys.stats().link(c, a).messages > 0);
        assert_eq!(sys.stats().link(b, a).messages, 0);
    }

    #[test]
    fn sc_inside_tree_materializes() {
        let (mut sys, a, b) = two_peer_system();
        sys.register_declarative_service(b, "names", r#"doc("catalog")//pkg/@name"#)
            .unwrap();
        let doc = Tree::parse(
            r#"<report><title>pkgs</title>
               <sc><peer>p1</peer><service>names</service></sc></report>"#,
        )
        .unwrap();
        let out = sys.eval(a, &Expr::Tree { tree: doc, at: a }).unwrap();
        assert_eq!(out.len(), 1);
        let t = &out[0];
        // 3 results + title + sc element still present
        assert_eq!(t.children(t.root()).len(), 5);
        let texts: Vec<String> = t
            .children_labeled(t.root(), "text")
            .map(|n| t.text(n))
            .collect();
        assert_eq!(texts, ["vim", "gcc", "vi"]);
    }

    #[test]
    fn lazy_sc_not_activated() {
        let (mut sys, a, b) = two_peer_system();
        sys.register_declarative_service(b, "names", r#"doc("catalog")//pkg/@name"#)
            .unwrap();
        let doc = Tree::parse(
            r#"<report><sc mode="lazy"><peer>p1</peer><service>names</service></sc></report>"#,
        )
        .unwrap();
        let out = sys.eval(a, &Expr::Tree { tree: doc, at: a }).unwrap();
        assert_eq!(out[0].children(out[0].root()).len(), 1, "sc untouched");
        assert_eq!(sys.stats().total_messages(), 0);
    }

    #[test]
    fn seq_returns_last_value() {
        let (mut sys, a, b) = two_peer_system();
        let e = Expr::Seq(vec![
            Expr::Send {
                dest: SendDest::NewDoc {
                    peer: a,
                    name: "tmp".into(),
                },
                payload: Box::new(Expr::Doc {
                    name: "catalog".into(),
                    at: PeerRef::At(b),
                }),
            },
            Expr::Doc {
                name: "tmp".into(),
                at: PeerRef::At(a),
            },
        ]);
        let out = sys.eval(a, &e).unwrap();
        assert_eq!(out.len(), 1);
        assert!(out[0].serialize().starts_with("<tmp>"));
    }

    #[test]
    fn errors_propagate() {
        let (mut sys, a, b) = two_peer_system();
        assert!(matches!(
            sys.eval(
                a,
                &Expr::Doc {
                    name: "missing".into(),
                    at: PeerRef::At(b)
                }
            ),
            Err(CoreError::NoSuchDoc { .. })
        ));
        assert!(matches!(
            sys.eval(
                a,
                &Expr::Sc {
                    provider: PeerRef::At(b),
                    service: "nope".into(),
                    params: vec![],
                    forward: vec![],
                }
            ),
            Err(CoreError::NoSuchService { .. })
        ));
        assert!(sys.eval(PeerId(9), &Expr::Seq(vec![])).is_err());
    }

    #[test]
    fn rule14_shape_eval_relocation_is_value_preserving() {
        let (mut sys, a, b) = two_peer_system();
        let direct = Expr::Doc {
            name: "catalog".into(),
            at: PeerRef::At(b),
        };
        let out1 = sys.eval(a, &direct).unwrap();
        let relocated = Expr::EvalAt {
            peer: b,
            expr: Box::new(Expr::Send {
                dest: SendDest::Peer(a),
                payload: Box::new(direct),
            }),
        };
        let out2 = sys.eval(a, &relocated).unwrap();
        assert!(forest_equiv(&out1, &out2));
    }
}
