//! Expression evaluation — definitions (1)–(9) of §3.2.
//!
//! `eval@p(e)` is implemented as [`AxmlSystem::eval`]`(p, e)`. It returns
//! the forest that materializes **at peer `p`** and performs every side
//! effect the paper describes: data/query shipping as real (simulated)
//! messages, results accumulating under forward-list nodes, new documents
//! and services installed.
//!
//! Mapping to the paper's definitions:
//!
//! | def. | case |
//! |------|------|
//! | (1)  | [`crate::expr::Expr::Tree`] at `p` — copy the tree, activating embedded `sc` nodes |
//! | (2)  | [`crate::expr::Expr::Apply`] with a local definition |
//! | (3)  | [`crate::expr::Expr::Send`] to a peer — value ∅, data moves |
//! | (4)  | `Send` to a node list — appended under each `n@p` |
//! | (5)  | `Tree`/`Doc` located remotely — the remote peer evaluates and ships back |
//! | (6)  | [`crate::expr::Expr::Sc`] — params to provider, provider applies its query, results to the forward list |
//! | (7)  | `Apply` with a remote definition — query and arguments shipped to the evaluation site |
//! | (8)  | [`crate::expr::Expr::Deploy`] — a shipped query becomes a new service |
//! | (9)  | `PeerRef::Any` / `ScProvider::Any` resolved via `pickDoc`/`pickService` |
//!
//! Simplifications vs. a production deployment (documented in DESIGN.md):
//! evaluation is one-shot over current state (continuous propagation is in
//! [`crate::continuous`]); remote evaluation requests ship the serialized
//! expression and are charged like any other message; fan-out transfers
//! are timed sequentially (the makespan is a sequential upper bound).

use crate::error::{CoreError, CoreResult};
use crate::expr::{Expr, PeerRef, SendDest};
use crate::message::AxmlMessage;
use crate::sc::{ActivationMode, ScNode, ScProvider};
use crate::system::AxmlSystem;
use axml_obs::TraceEvent;
use axml_xml::ids::{NodeAddr, PeerId, ServiceName};
use axml_xml::tree::{NodeId, Tree};

impl AxmlSystem {
    /// `eval@at(expr)` — evaluate the expression at a peer, returning the
    /// forest left there.
    pub fn eval(&mut self, at: PeerId, expr: &Expr) -> CoreResult<Vec<Tree>> {
        self.check_peer(at)?;
        match expr {
            // ---- definitions (1)/(5): literal trees -------------------
            Expr::Tree { tree, at: loc } => {
                if loc == &at {
                    self.record_def(1, at, "tree");
                    let t = self.materialize_tree(at, tree)?;
                    Ok(vec![t])
                } else {
                    self.fetch_remote(at, *loc, expr)
                }
            }

            // ---- documents (+ definition (9) for d@any) ---------------
            Expr::Doc { name, at: loc } => {
                let (home, concrete) = match loc {
                    PeerRef::At(p) => (*p, name.clone()),
                    PeerRef::Any => {
                        self.record_def(9, at, "pickDoc");
                        let policy = self.pick_policy;
                        self.catalog.pick_doc(policy, at, name, &self.net)?
                    }
                };
                if home == at {
                    self.record_def(1, at, "doc");
                    let tree = self.peers[at.index()].doc(&concrete, at)?.clone();
                    Ok(vec![tree])
                } else {
                    let remote = Expr::Doc {
                        name: concrete,
                        at: PeerRef::At(home),
                    };
                    self.fetch_remote(at, home, &remote)
                }
            }

            // ---- definitions (2)/(7): query application ---------------
            Expr::Apply { query, args } => {
                if query.query.arity() != args.len() {
                    return Err(CoreError::Query(axml_query::QueryError::ArityMismatch {
                        expected: query.query.arity(),
                        got: args.len(),
                    }));
                }
                // Definition (7): a remote definition is shipped to the
                // evaluation site first.
                if query.def_at != at {
                    self.record_def(7, at, "apply");
                    let def = query.query.to_xml().serialize();
                    self.transfer(
                        query.def_at,
                        at,
                        AxmlMessage::Data {
                            payload: def,
                            tag: "query-def",
                        },
                    )?;
                } else {
                    self.record_def(2, at, "apply");
                }
                // Arguments materialize at the evaluation site (remote data
                // is fetched by the recursive definition (5)).
                let mut forests = Vec::with_capacity(args.len());
                for a in args {
                    forests.push(self.eval(at, a)?);
                }
                let out = query
                    .query
                    .eval_with_docs(&forests, &self.peers[at.index()])?;
                Ok(out)
            }

            // ---- definitions (3)/(4) + send-to-new-doc ----------------
            Expr::Send { dest, payload } => {
                let forest = self.eval(at, payload)?;
                match dest {
                    SendDest::Peer(q) => {
                        self.record_def(3, at, "send");
                        if q != &at {
                            self.transfer(
                                at,
                                *q,
                                AxmlMessage::Data {
                                    payload: Self::serialize_forest(&forest),
                                    tag: "send",
                                },
                            )?;
                        }
                        // Definition (3): the send expression itself
                        // evaluates to ∅; the data's arrival is the side
                        // effect (captured by EvalAt delegation when the
                        // destination is the delegating peer).
                        Ok(Vec::new())
                    }
                    SendDest::Nodes(addrs) => {
                        self.record_def(4, at, "send-nodes");
                        self.deliver_to_nodes(at, addrs, &forest)?;
                        Ok(Vec::new())
                    }
                    SendDest::NewDoc { peer, name } => {
                        self.record_def(3, at, "send-newdoc");
                        if *peer != at {
                            self.transfer(
                                at,
                                *peer,
                                AxmlMessage::InstallDoc {
                                    name: name.clone(),
                                    payload: Self::serialize_forest(&forest),
                                },
                            )?;
                        }
                        let mut doc = Tree::new(name.as_str());
                        let root = doc.root();
                        for t in &forest {
                            doc.graft(root, t, t.root()).expect("fresh root");
                        }
                        self.peers[peer.index()]
                            .install_doc(axml_xml::store::Document::new(name.clone(), doc))?;
                        Ok(Vec::new())
                    }
                }
            }

            // ---- definition (6): service calls ------------------------
            Expr::Sc {
                provider,
                service,
                params,
                forward,
            } => {
                let provider = match provider {
                    PeerRef::At(p) => ScProvider::Peer(*p),
                    PeerRef::Any => ScProvider::Any,
                };
                let mut param_forests = Vec::with_capacity(params.len());
                for p in params {
                    param_forests.push(self.eval(at, p)?);
                }
                self.call_service(at, provider, service, param_forests, forward)
            }

            // ---- rules (14)–(16): delegated evaluation ----------------
            Expr::EvalAt { peer, expr: inner } => {
                self.obs.metrics.delegations += 1;
                let now = self.now_ms();
                let (from, to) = (at, *peer);
                self.obs
                    .emit(|| TraceEvent::Delegation { from, to, at_ms: now });
                let mut shipped;
                let inner: &Expr = if *peer != at {
                    // The delegated plan crosses the wire (embedded query
                    // definitions travel with it).
                    self.transfer(
                        at,
                        *peer,
                        AxmlMessage::Request {
                            expr_xml: inner.to_xml().serialize(),
                        },
                    )?;
                    shipped = (**inner).clone();
                    shipped.relocate_query_defs(*peer);
                    &shipped
                } else {
                    inner
                };
                // Capture the common delegation shape: the inner expression
                // sends its value straight back to us.
                if let Expr::Send {
                    dest: SendDest::Peer(back),
                    payload,
                } = inner
                {
                    if *back == at {
                        let forest = self.eval(*peer, payload)?;
                        if *peer != at {
                            self.transfer(
                                *peer,
                                at,
                                AxmlMessage::Data {
                                    payload: Self::serialize_forest(&forest),
                                    tag: "delegated-result",
                                },
                            )?;
                        }
                        return Ok(forest);
                    }
                }
                // General case: the inner expression's sends address other
                // locations; nothing lands here.
                let _ = self.eval(*peer, inner)?;
                Ok(Vec::new())
            }

            // ---- definition (8): code shipping ------------------------
            Expr::Deploy {
                to,
                query,
                as_service,
            } => {
                self.record_def(8, at, "deploy");
                if query.def_at != *to {
                    self.transfer(
                        query.def_at,
                        *to,
                        AxmlMessage::DeployQuery {
                            query_xml: query.query.to_xml().serialize(),
                            as_service: as_service.clone(),
                        },
                    )?;
                }
                self.peers[to.index()].register_service(crate::service::Service::declarative(
                    as_service.clone(),
                    query.query.clone(),
                ));
                Ok(Vec::new())
            }

            // ---- sequencing (rule (13) plans) -------------------------
            Expr::Seq(es) => {
                self.obs.metrics.seq_steps += es.len() as u64;
                let mut last = Vec::new();
                for e in es {
                    last = self.eval(at, e)?;
                }
                Ok(last)
            }
        }
    }

    /// Definition (5): `eval@at(x@loc)` for remote `x` — ship the request,
    /// evaluate at the owner, ship the result back.
    ///
    /// The request *names* the remote datum rather than serializing it —
    /// a literal `t@loc` is identified by reference (as the paper's `n@p`
    /// node identifiers would), so fetching a tree never ships the tree's
    /// own bytes in the request direction.
    fn fetch_remote(&mut self, at: PeerId, loc: PeerId, expr: &Expr) -> CoreResult<Vec<Tree>> {
        self.record_def(5, at, "fetch");
        let request_xml = match expr {
            Expr::Tree { tree, .. } => format!(
                r#"<fetch kind="tree" at="p{}" ref="{:016x}"/>"#,
                loc.0,
                axml_xml::equiv::canonical_hash(tree, tree.root())
            ),
            other => other.to_xml().serialize(),
        };
        self.transfer(
            at,
            loc,
            AxmlMessage::Request {
                expr_xml: request_xml,
            },
        )?;
        let mut local = expr.clone();
        relocate(&mut local, loc);
        let forest = self.eval(loc, &local)?;
        self.transfer(
            loc,
            at,
            AxmlMessage::Data {
                payload: Self::serialize_forest(&forest),
                tag: "fetch",
            },
        )?;
        Ok(forest)
    }

    /// Definition (1) + (6): copy a tree, activating its immediate `sc`
    /// elements. Results with an explicit forward list leave side effects
    /// elsewhere; calls without one accumulate as siblings of the `sc`
    /// node (§2.2 step 3), with the `sc` kept in place (AXML semantics —
    /// the call may stream more later).
    fn materialize_tree(&mut self, at: PeerId, tree: &Tree) -> CoreResult<Tree> {
        let mut out = tree.clone();
        let sc_nodes = ScNode::find_all(&out, out.root());
        for sc_id in sc_nodes {
            let sc = ScNode::parse(&out, sc_id)?;
            if sc.mode != ActivationMode::Immediate {
                continue;
            }
            let param_forests: Vec<Vec<Tree>> =
                sc.params.iter().map(|p| vec![p.clone()]).collect();
            let results =
                self.call_service(at, sc.provider, &sc.service, param_forests, &sc.forward)?;
            if sc.forward.is_empty() {
                // insert as siblings of the sc node
                let parent = out
                    .parent(sc_id)
                    .ok_or_else(|| CoreError::Malformed("sc at document root".into()))?;
                for r in &results {
                    out.graft(parent, r, r.root())?;
                }
            }
        }
        Ok(out)
    }

    /// §2.2's activation steps 1–3 / definition (6).
    pub(crate) fn call_service(
        &mut self,
        caller: PeerId,
        provider: ScProvider,
        service: &ServiceName,
        param_forests: Vec<Vec<Tree>>,
        forward: &[NodeAddr],
    ) -> CoreResult<Vec<Tree>> {
        let (prov, concrete) = match provider {
            ScProvider::Peer(p) => (p, service.clone()),
            ScProvider::Any => {
                self.record_def(9, caller, "pickService");
                let policy = self.pick_policy;
                self.catalog
                    .pick_service(policy, caller, service, &self.net)?
            }
        };
        self.check_peer(prov)?;
        self.record_def(6, caller, "sc");
        self.obs.metrics.service_calls += 1;
        let call_id = self.fresh_call_id();
        let now = self.now_ms();
        self.obs.emit(|| TraceEvent::ServiceCall {
            caller,
            provider: prov,
            service: concrete.as_str().to_string(),
            call_id,
            at_ms: now,
        });
        // Step 1: params to the provider.
        if prov != caller {
            self.transfer(
                caller,
                prov,
                AxmlMessage::Invoke {
                    service: concrete.clone(),
                    params: param_forests
                        .iter()
                        .map(|f| Self::serialize_forest(f))
                        .collect(),
                    forward: forward.to_vec(),
                    call_id,
                },
            )?;
        }
        // Step 2: the provider applies its implementation query.
        let svc = self.peers[prov.index()].service(&concrete, prov)?;
        if svc.arity() != param_forests.len() {
            return Err(CoreError::Query(axml_query::QueryError::ArityMismatch {
                expected: svc.arity(),
                got: param_forests.len(),
            }));
        }
        let query = svc.query.clone();
        let results = query.eval_with_docs(&param_forests, &self.peers[prov.index()])?;
        // Step 3: results to the forward list (or back to the caller).
        if forward.is_empty() {
            if prov != caller {
                self.transfer(
                    prov,
                    caller,
                    AxmlMessage::Response {
                        call_id,
                        payload: Self::serialize_forest(&results),
                    },
                )?;
            }
            Ok(results)
        } else {
            self.deliver_to_nodes(prov, forward, &results)?;
            Ok(Vec::new())
        }
    }

    /// Count one firing of paper definition `def` and, when a trace sink
    /// is attached, stream the matching [`TraceEvent::Definition`].
    fn record_def(&mut self, def: u8, peer: PeerId, expr: &'static str) {
        self.obs.metrics.record_def(def);
        let at_ms = self.net.now_ms();
        self.obs.emit(|| TraceEvent::Definition {
            def,
            peer,
            expr,
            at_ms,
        });
    }

    /// Definition (4): append a copy of each tree under each `n@p`.
    pub(crate) fn deliver_to_nodes(
        &mut self,
        from: PeerId,
        addrs: &[NodeAddr],
        forest: &[Tree],
    ) -> CoreResult<()> {
        for addr in addrs {
            self.check_peer(addr.peer)?;
            if addr.peer != from {
                self.transfer(
                    from,
                    addr.peer,
                    AxmlMessage::Data {
                        payload: Self::serialize_forest(forest),
                        tag: "forward",
                    },
                )?;
            }
            self.graft_at(addr, forest)?;
        }
        Ok(())
    }

    /// Graft a forest under the addressed node.
    pub(crate) fn graft_at(&mut self, addr: &NodeAddr, forest: &[Tree]) -> CoreResult<()> {
        let peer = &mut self.peers[addr.peer.index()];
        let doc = peer
            .docs
            .get_mut(&addr.doc)
            .ok_or_else(|| CoreError::NoSuchDoc {
                doc: addr.doc.clone(),
                at: addr.peer,
            })?;
        let tree = doc.tree_mut();
        if !tree.contains(addr.node) {
            return Err(CoreError::Xml(axml_xml::XmlError::InvalidNode {
                index: addr.node.index() as u32,
            }));
        }
        for t in forest {
            tree.graft(addr.node, t, t.root())?;
        }
        Ok(())
    }
}

/// Re-pin the location of the outermost data reference to `loc` (used when
/// the owner evaluates a fetched expression locally).
fn relocate(expr: &mut Expr, loc: PeerId) {
    match expr {
        Expr::Tree { at, .. } => *at = loc,
        Expr::Doc { at, .. } => *at = PeerRef::At(loc),
        _ => {}
    }
}

/// Find a node id inside a document by a simple label path (test/bench
/// helper for building forward lists).
pub fn node_by_path(tree: &Tree, path: &[&str]) -> Option<NodeId> {
    let mut cur = tree.root();
    for label in path {
        cur = tree.first_child_labeled(cur, label)?;
    }
    Some(cur)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::LocatedQuery;
    use axml_net::link::LinkCost;
    use axml_query::Query;
    use axml_xml::equiv::forest_equiv;

    fn catalog_xml() -> &'static str {
        r#"<catalog>
             <pkg name="vim"><size>4000</size></pkg>
             <pkg name="gcc"><size>90000</size></pkg>
             <pkg name="vi"><size>100</size></pkg>
           </catalog>"#
    }

    fn two_peer_system() -> (AxmlSystem, PeerId, PeerId) {
        let mut sys = AxmlSystem::new();
        let a = sys.add_peer("client");
        let b = sys.add_peer("server");
        sys.net_mut().set_link(a, b, LinkCost::wan());
        sys.install_doc(b, "catalog", Tree::parse(catalog_xml()).unwrap())
            .unwrap();
        (sys, a, b)
    }

    #[test]
    fn def1_local_tree_is_identity() {
        let mut sys = AxmlSystem::new();
        let a = sys.add_peer("a");
        let t = Tree::parse("<x><y>1</y></x>").unwrap();
        let out = sys
            .eval(
                a,
                &Expr::Tree {
                    tree: t.clone(),
                    at: a,
                },
            )
            .unwrap();
        assert!(forest_equiv(&out, &[t]));
        assert_eq!(sys.stats().total_messages(), 0, "local eval is free");
    }

    #[test]
    fn def5_remote_doc_fetch() {
        let (mut sys, a, _b) = two_peer_system();
        let out = sys
            .eval(
                a,
                &Expr::Doc {
                    name: "catalog".into(),
                    at: PeerRef::At(PeerId(1)),
                },
            )
            .unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].serialized_size(), Tree::parse(catalog_xml()).unwrap().serialized_size());
        // request + data back
        assert_eq!(sys.stats().total_messages(), 2);
        assert!(sys.stats().total_bytes() > out[0].serialized_size() as u64);
    }

    #[test]
    fn def2_local_query_on_remote_doc_def7_style() {
        let (mut sys, a, b) = two_peer_system();
        let q = Query::parse(
            "big",
            r#"for $p in $0//pkg where $p/size/text() > 1000 return {$p/@name}"#,
        )
        .unwrap();
        let e = Expr::Apply {
            query: LocatedQuery::new(q, a),
            args: vec![Expr::Doc {
                name: "catalog".into(),
                at: PeerRef::At(b),
            }],
        };
        let out = sys.eval(a, &e).unwrap();
        assert_eq!(out.len(), 2);
        // naive strategy ships the whole catalog to a
        let whole = Tree::parse(catalog_xml()).unwrap().serialized_size() as u64;
        assert!(sys.stats().link(b, a).bytes >= whole);
    }

    #[test]
    fn delegation_ships_less_for_selective_queries() {
        // The rule-10/11 rewritten plan: push the selection to the data.
        // Needs a catalog large enough that data dwarfs the shipped plan —
        // the optimizer's cost model captures exactly this crossover.
        let mut sys = AxmlSystem::new();
        let a = sys.add_peer("client");
        let b = sys.add_peer("server");
        sys.net_mut().set_link(a, b, LinkCost::wan());
        let mut big = String::from("<catalog>");
        for i in 0..200 {
            big.push_str(&format!(
                r#"<pkg name="pkg{i}"><size>{}</size><desc>a package with a long description {i}</desc></pkg>"#,
                if i % 50 == 0 { 5000 } else { 10 }
            ));
        }
        big.push_str("</catalog>");
        sys.install_doc(b, "catalog", Tree::parse(&big).unwrap()).unwrap();
        let q = Query::parse(
            "big",
            r#"for $p in $0//pkg where $p/size/text() > 1000 return {$p/@name}"#,
        )
        .unwrap();
        let naive = Expr::Apply {
            query: LocatedQuery::new(q.clone(), a),
            args: vec![Expr::Doc {
                name: "catalog".into(),
                at: PeerRef::At(b),
            }],
        };
        let out_naive = sys.eval(a, &naive).unwrap();
        let naive_bytes = sys.stats().total_bytes();
        sys.reset_stats();

        let delegated = Expr::EvalAt {
            peer: b,
            expr: Box::new(Expr::Send {
                dest: SendDest::Peer(a),
                payload: Box::new(Expr::Apply {
                    query: LocatedQuery::new(q, a),
                    args: vec![Expr::Doc {
                        name: "catalog".into(),
                        at: PeerRef::At(b),
                    }],
                }),
            }),
        };
        let out_del = sys.eval(a, &delegated).unwrap();
        let del_bytes = sys.stats().total_bytes();
        assert!(forest_equiv(&out_naive, &out_del));
        assert!(
            del_bytes < naive_bytes,
            "delegation must ship less: {del_bytes} vs {naive_bytes}"
        );
    }

    #[test]
    fn def3_send_to_peer_returns_empty() {
        let (mut sys, a, b) = two_peer_system();
        let e = Expr::Send {
            dest: SendDest::Peer(a),
            payload: Box::new(Expr::Doc {
                name: "catalog".into(),
                at: PeerRef::At(b),
            }),
        };
        // evaluated at b: catalog local, shipped to a, value ∅ at b
        let out = sys.eval(b, &e).unwrap();
        assert!(out.is_empty());
        assert_eq!(sys.stats().link(b, a).messages, 1);
    }

    #[test]
    fn def4_send_to_nodes_appends() {
        let (mut sys, a, b) = two_peer_system();
        sys.install_doc(a, "inbox", Tree::parse("<inbox><new/></inbox>").unwrap())
            .unwrap();
        let inbox_tree = sys.peer(a).docs.get(&"inbox".into()).unwrap().tree();
        let target = node_by_path(inbox_tree, &["new"]).unwrap();
        let e = Expr::Send {
            dest: SendDest::Nodes(vec![NodeAddr::new(a, "inbox", target)]),
            payload: Box::new(Expr::Tree {
                tree: Tree::parse("<alert>hi</alert>").unwrap(),
                at: b,
            }),
        };
        let out = sys.eval(b, &e).unwrap();
        assert!(out.is_empty());
        let inbox = sys.peer(a).docs.get(&"inbox".into()).unwrap().tree();
        assert_eq!(
            inbox.serialize(),
            "<inbox><new><alert>hi</alert></new></inbox>"
        );
    }

    #[test]
    fn send_new_doc_installs_and_respects_uniqueness() {
        let (mut sys, a, b) = two_peer_system();
        let e = Expr::Send {
            dest: SendDest::NewDoc {
                peer: a,
                name: "copy".into(),
            },
            payload: Box::new(Expr::Doc {
                name: "catalog".into(),
                at: PeerRef::At(b),
            }),
        };
        sys.eval(b, &e).unwrap();
        assert!(sys.peer(a).docs.contains(&"copy".into()));
        // the same name again violates §2.1 uniqueness
        assert!(sys.eval(b, &e).is_err());
    }

    #[test]
    fn def6_service_call_roundtrip() {
        let (mut sys, a, b) = two_peer_system();
        sys.register_declarative_service(
            b,
            "lookup",
            r#"for $p in doc("catalog")//pkg where $p/@name = $0/text() return {$p/size}"#,
        )
        .unwrap();
        let e = Expr::Sc {
            provider: PeerRef::At(b),
            service: "lookup".into(),
            params: vec![Expr::Tree {
                tree: Tree::parse("<q>gcc</q>").unwrap(),
                at: a,
            }],
            forward: vec![],
        };
        let out = sys.eval(a, &e).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].serialize(), "<size>90000</size>");
        // invoke + response
        assert_eq!(sys.stats().total_messages(), 2);
    }

    #[test]
    fn def6_forward_list_redirects_results() {
        let (mut sys, a, b) = two_peer_system();
        let c = sys.add_peer("archive");
        sys.install_doc(c, "log", Tree::parse("<log/>").unwrap()).unwrap();
        sys.register_declarative_service(b, "scan", r#"doc("catalog")//pkg/@name"#)
            .unwrap();
        let log_root = sys.peer(c).docs.get(&"log".into()).unwrap().tree().root();
        let e = Expr::Sc {
            provider: PeerRef::At(b),
            service: "scan".into(),
            params: vec![],
            forward: vec![NodeAddr::new(c, "log", log_root)],
        };
        let out = sys.eval(a, &e).unwrap();
        assert!(out.is_empty(), "results went to the forward list");
        let log = sys.peer(c).docs.get(&"log".into()).unwrap().tree();
        assert_eq!(log.children(log.root()).len(), 3);
        // nothing shipped back to the caller
        assert_eq!(sys.stats().link(b, a).messages, 0);
        assert_eq!(sys.stats().link(b, c).messages, 1);
    }

    #[test]
    fn def8_deploy_creates_service() {
        let (mut sys, a, b) = two_peer_system();
        let q = Query::parse("sel", r#"for $p in doc("catalog")//pkg return {$p/@name}"#)
            .unwrap();
        sys.eval(
            a,
            &Expr::Deploy {
                to: b,
                query: LocatedQuery::new(q, a),
                as_service: "names".into(),
            },
        )
        .unwrap();
        assert!(sys.peer(b).services.contains_key(&"names".into()));
        // and the deployed service is callable
        let out = sys
            .eval(
                a,
                &Expr::Sc {
                    provider: PeerRef::At(b),
                    service: "names".into(),
                    params: vec![],
                    forward: vec![],
                },
            )
            .unwrap();
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn def9_generic_doc_resolution() {
        let mut sys = AxmlSystem::new();
        let a = sys.add_peer("a");
        let b = sys.add_peer("b");
        let c = sys.add_peer("c");
        sys.net_mut().set_link(a, b, LinkCost::slow());
        sys.net_mut().set_link(a, c, LinkCost::lan());
        sys.install_replica(b, "cat", "cat-b", Tree::parse("<c><p>1</p></c>").unwrap())
            .unwrap();
        sys.install_replica(c, "cat", "cat-c", Tree::parse("<c><p>1</p></c>").unwrap())
            .unwrap();
        sys.set_pick_policy(crate::pick::PickPolicy::Closest);
        let out = sys
            .eval(
                a,
                &Expr::Doc {
                    name: "cat".into(),
                    at: PeerRef::Any,
                },
            )
            .unwrap();
        assert_eq!(out.len(), 1);
        // fetched from c (the cheap link), not b
        assert!(sys.stats().link(c, a).messages > 0);
        assert_eq!(sys.stats().link(b, a).messages, 0);
    }

    #[test]
    fn sc_inside_tree_materializes() {
        let (mut sys, a, b) = two_peer_system();
        sys.register_declarative_service(b, "names", r#"doc("catalog")//pkg/@name"#)
            .unwrap();
        let doc = Tree::parse(
            r#"<report><title>pkgs</title>
               <sc><peer>p1</peer><service>names</service></sc></report>"#,
        )
        .unwrap();
        let out = sys
            .eval(a, &Expr::Tree { tree: doc, at: a })
            .unwrap();
        assert_eq!(out.len(), 1);
        let t = &out[0];
        // 3 results + title + sc element still present
        assert_eq!(t.children(t.root()).len(), 5);
        let texts: Vec<String> = t
            .children_labeled(t.root(), "text")
            .map(|n| t.text(n))
            .collect();
        assert_eq!(texts, ["vim", "gcc", "vi"]);
    }

    #[test]
    fn lazy_sc_not_activated() {
        let (mut sys, a, b) = two_peer_system();
        sys.register_declarative_service(b, "names", r#"doc("catalog")//pkg/@name"#)
            .unwrap();
        let doc = Tree::parse(
            r#"<report><sc mode="lazy"><peer>p1</peer><service>names</service></sc></report>"#,
        )
        .unwrap();
        let out = sys.eval(a, &Expr::Tree { tree: doc, at: a }).unwrap();
        assert_eq!(out[0].children(out[0].root()).len(), 1, "sc untouched");
        assert_eq!(sys.stats().total_messages(), 0);
    }

    #[test]
    fn seq_returns_last_value() {
        let (mut sys, a, b) = two_peer_system();
        let e = Expr::Seq(vec![
            Expr::Send {
                dest: SendDest::NewDoc {
                    peer: a,
                    name: "tmp".into(),
                },
                payload: Box::new(Expr::Doc {
                    name: "catalog".into(),
                    at: PeerRef::At(b),
                }),
            },
            Expr::Doc {
                name: "tmp".into(),
                at: PeerRef::At(a),
            },
        ]);
        let out = sys.eval(a, &e).unwrap();
        assert_eq!(out.len(), 1);
        assert!(out[0].serialize().starts_with("<tmp>"));
    }

    #[test]
    fn errors_propagate() {
        let (mut sys, a, b) = two_peer_system();
        assert!(matches!(
            sys.eval(
                a,
                &Expr::Doc {
                    name: "missing".into(),
                    at: PeerRef::At(b)
                }
            ),
            Err(CoreError::NoSuchDoc { .. })
        ));
        assert!(matches!(
            sys.eval(
                a,
                &Expr::Sc {
                    provider: PeerRef::At(b),
                    service: "nope".into(),
                    params: vec![],
                    forward: vec![],
                }
            ),
            Err(CoreError::NoSuchService { .. })
        ));
        assert!(sys.eval(PeerId(9), &Expr::Seq(vec![])).is_err());
    }

    #[test]
    fn rule14_shape_eval_relocation_is_value_preserving() {
        let (mut sys, a, b) = two_peer_system();
        let direct = Expr::Doc {
            name: "catalog".into(),
            at: PeerRef::At(b),
        };
        let out1 = sys.eval(a, &direct).unwrap();
        let relocated = Expr::EvalAt {
            peer: b,
            expr: Box::new(Expr::Send {
                dest: SendDest::Peer(a),
                payload: Box::new(direct),
            }),
        };
        let out2 = sys.eval(a, &relocated).unwrap();
        assert!(forest_equiv(&out1, &out2));
    }
}
