//! The algebra `E` of distributed AXML expressions — §3.1.
//!
//! > *"To model the various operations needed by our distributed data
//! > management applications, we introduce here a simple language of AXML
//! > expressions, denoted E."*
//!
//! The constructors map one-to-one to the paper's:
//!
//! | paper                                   | here |
//! |-----------------------------------------|------|
//! | `t@p`                                   | [`Expr::Tree`] |
//! | `d@p`, `d@any`                          | [`Expr::Doc`] |
//! | `q@p(t1, …, tn)`                        | [`Expr::Apply`] |
//! | `send(p2, e)`, `send([n@p…], e)`, `send(d@p2, e)` | [`Expr::Send`] with [`SendDest`] |
//! | `send(p2, q@p1)` (code shipping, def. (8)) | [`Expr::Deploy`] |
//! | `sc(p\|any, s, params, forws)`          | [`Expr::Sc`] |
//! | `eval@p(e)` as a *sub*-expression (rules (14)–(16)) | [`Expr::EvalAt`] |
//! | store-then-reuse sequencing (rule (13)) | [`Expr::Seq`] |
//!
//! Expressions serialize to XML trees (*"an expression can be viewed
//! (serialized) as an XML tree, whose root is labeled with the expression
//! constructor"*) — that serialization is what crosses the simulated wire
//! when computations are delegated, and its size is what the cost model
//! charges for shipping *plans*.

use crate::error::{CoreError, CoreResult};
use axml_query::Query;
use axml_xml::ids::{DocName, NodeAddr, PeerId, ServiceName};
use axml_xml::tree::{NodeId, Tree};
use std::fmt;

/// A peer reference: concrete, or the generic `any` of §2.3.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PeerRef {
    /// A concrete peer.
    At(PeerId),
    /// Any peer holding a member of the equivalence class.
    Any,
}

impl fmt::Display for PeerRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PeerRef::At(p) => write!(f, "{p}"),
            PeerRef::Any => write!(f, "any"),
        }
    }
}

/// A query together with the peer currently holding its definition; when a
/// query is evaluated elsewhere, the definition's wire size is charged from
/// `def_at` to the evaluation site (definitions (7)/(8)).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LocatedQuery {
    /// The (shippable) query.
    pub query: Query,
    /// Where its definition lives.
    pub def_at: PeerId,
}

impl LocatedQuery {
    /// Pair a query with its home peer.
    pub fn new(query: Query, def_at: PeerId) -> Self {
        LocatedQuery { query, def_at }
    }
}

/// Destinations of a `send` — §3.1's three data-sending forms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SendDest {
    /// `send(p2, e)` — the value becomes the result of the enclosing
    /// delegated evaluation at `p2`.
    Peer(PeerId),
    /// `send([n1@p1, …], e)` — append a copy under each listed node.
    Nodes(Vec<NodeAddr>),
    /// `send(d@p2, e)` — install the value as a *new* document `d` at `p2`.
    NewDoc {
        /// Hosting peer.
        peer: PeerId,
        /// New document name (must be fresh at `peer`).
        name: DocName,
    },
}

/// An AXML expression.
#[derive(Debug, Clone)]
pub enum Expr {
    /// A literal tree pinned at a peer (`t@p`).
    Tree {
        /// The tree (may contain `sc` elements).
        tree: Tree,
        /// Its location.
        at: PeerId,
    },
    /// A document reference (`d@p` / `d@any`).
    Doc {
        /// Document (or equivalence-class) name.
        name: DocName,
        /// Location, possibly generic.
        at: PeerRef,
    },
    /// Query application `q(e1, …, en)`.
    Apply {
        /// The query and its definition's location.
        query: LocatedQuery,
        /// Argument expressions (arity must match).
        args: Vec<Expr>,
    },
    /// Data shipping.
    Send {
        /// Where to.
        dest: SendDest,
        /// What (evaluated first, then copied — definition (3) notes the
        /// copy).
        payload: Box<Expr>,
    },
    /// A service call element, as an expression (§2.3 extended syntax).
    Sc {
        /// Providing peer, possibly generic.
        provider: PeerRef,
        /// Service name.
        service: ServiceName,
        /// Parameter expressions.
        params: Vec<Expr>,
        /// Forward list; empty = results return to the caller (the
        /// default `forw` of §2.3).
        forward: Vec<NodeAddr>,
    },
    /// Delegated evaluation `eval@p(e)` used inside expressions by rules
    /// (14)–(16). The serialized `e` is shipped to `peer`, which evaluates
    /// it; an inner `send` addresses the results.
    EvalAt {
        /// The peer that will run the evaluation.
        peer: PeerId,
        /// The delegated expression.
        expr: Box<Expr>,
    },
    /// Code shipping `send(p2, q@p1)` — deploys the query as a new service
    /// (definition (8)).
    Deploy {
        /// Receiving peer.
        to: PeerId,
        /// The shipped query.
        query: LocatedQuery,
        /// Name of the service created at `to`.
        as_service: ServiceName,
    },
    /// Evaluate sub-expressions left to right; the value is the last one's
    /// (used by rule (13)'s store-then-reuse plans).
    Seq(Vec<Expr>),
}

impl Expr {
    /// Direct sub-expressions.
    pub fn children(&self) -> Vec<&Expr> {
        match self {
            Expr::Tree { .. } | Expr::Doc { .. } | Expr::Deploy { .. } => vec![],
            Expr::Apply { args, .. } => args.iter().collect(),
            Expr::Send { payload, .. } => vec![payload],
            Expr::Sc { params, .. } => params.iter().collect(),
            Expr::EvalAt { expr, .. } => vec![expr],
            Expr::Seq(es) => es.iter().collect(),
        }
    }

    /// Number of nodes in the expression tree.
    pub fn size(&self) -> usize {
        1 + self.children().iter().map(|c| c.size()).sum::<usize>()
    }

    /// All peers mentioned anywhere in the expression.
    pub fn mentioned_peers(&self) -> Vec<PeerId> {
        let mut out = Vec::new();
        self.collect_peers(&mut out);
        out.sort_unstable();
        out.dedup();
        out
    }

    fn collect_peers(&self, out: &mut Vec<PeerId>) {
        match self {
            Expr::Tree { at, .. } => out.push(*at),
            Expr::Doc { at, .. } => {
                if let PeerRef::At(p) = at {
                    out.push(*p);
                }
            }
            Expr::Apply { query, args } => {
                out.push(query.def_at);
                for a in args {
                    a.collect_peers(out);
                }
            }
            Expr::Send { dest, payload } => {
                match dest {
                    SendDest::Peer(p) => out.push(*p),
                    SendDest::Nodes(addrs) => out.extend(addrs.iter().map(|a| a.peer)),
                    SendDest::NewDoc { peer, .. } => out.push(*peer),
                }
                payload.collect_peers(out);
            }
            Expr::Sc {
                provider,
                params,
                forward,
                ..
            } => {
                if let PeerRef::At(p) = provider {
                    out.push(*p);
                }
                out.extend(forward.iter().map(|a| a.peer));
                for p in params {
                    p.collect_peers(out);
                }
            }
            Expr::EvalAt { peer, expr } => {
                out.push(*peer);
                expr.collect_peers(out);
            }
            Expr::Deploy { to, query, .. } => {
                out.push(*to);
                out.push(query.def_at);
            }
            Expr::Seq(es) => {
                for e in es {
                    e.collect_peers(out);
                }
            }
        }
    }

    /// Rebuild this expression with sub-expression `index` (in
    /// [`Expr::children`] order) replaced.
    pub fn with_child(&self, index: usize, child: Expr) -> Expr {
        let mut out = self.clone();
        match &mut out {
            Expr::Apply { args, .. } => args[index] = child,
            Expr::Send { payload, .. } => {
                assert_eq!(index, 0);
                **payload = child;
            }
            Expr::Sc { params, .. } => params[index] = child,
            Expr::EvalAt { expr, .. } => {
                assert_eq!(index, 0);
                **expr = child;
            }
            Expr::Seq(es) => es[index] = child,
            Expr::Tree { .. } | Expr::Doc { .. } | Expr::Deploy { .. } => {
                panic!("leaf expression has no children")
            }
        }
        out
    }

    /// Mark everything the expression *carries inline* — query
    /// definitions and literal trees — as residing at `to`. Called when
    /// the expression is shipped: its serialization contains those
    /// payloads, so after the transfer they live at the recipient and
    /// must be neither re-fetched (definition (5)) nor re-charged
    /// (definition (7)).
    pub fn relocate_query_defs(&mut self, to: PeerId) {
        match self {
            Expr::Apply { query, args } => {
                query.def_at = to;
                for a in args {
                    a.relocate_query_defs(to);
                }
            }
            Expr::Deploy { query, .. } => query.def_at = to,
            Expr::Send { payload, .. } => payload.relocate_query_defs(to),
            Expr::Sc { params, .. } => {
                for p in params {
                    p.relocate_query_defs(to);
                }
            }
            Expr::EvalAt { expr, .. } => expr.relocate_query_defs(to),
            Expr::Seq(es) => {
                for e in es {
                    e.relocate_query_defs(to);
                }
            }
            Expr::Tree { at, .. } => *at = to,
            Expr::Doc { .. } => {}
        }
    }

    /// Rewrite nested delegation *return* destinations from `old` to
    /// `new`.
    ///
    /// Inside an expression evaluated at site `s`, a sub-expression
    /// `EvalAt{p, Send{Peer(s), X}}` means "compute X at p and bring the
    /// value back *here*". When a rewrite rule moves the enclosing
    /// expression to a different evaluation site, those context-relative
    /// returns must follow it — other `send` destinations (third-party
    /// deliveries, node lists, new documents) are absolute and stay put.
    /// Traversal stops at `EvalAt` boundaries (their bodies run in their
    /// own context) except for the immediate return-send.
    pub fn retarget_returns(&mut self, old: PeerId, new: PeerId) {
        match self {
            Expr::EvalAt { expr, .. } => {
                if let Expr::Send {
                    dest: SendDest::Peer(d),
                    ..
                } = &mut **expr
                {
                    if *d == old {
                        *d = new;
                    }
                }
            }
            Expr::Apply { args, .. } => {
                for a in args {
                    a.retarget_returns(old, new);
                }
            }
            Expr::Sc { params, .. } => {
                for p in params {
                    p.retarget_returns(old, new);
                }
            }
            Expr::Seq(es) => {
                for e in es {
                    e.retarget_returns(old, new);
                }
            }
            Expr::Send { payload, .. } => payload.retarget_returns(old, new),
            Expr::Tree { .. } | Expr::Doc { .. } | Expr::Deploy { .. } => {}
        }
    }

    /// A canonical string identity (used for memoization in the optimizer
    /// and for equality in tests) — the compact XML serialization.
    pub fn fingerprint(&self) -> String {
        self.to_xml().serialize()
    }

    /// Wire size in bytes when this expression is shipped (delegations,
    /// requests).
    pub fn wire_size(&self) -> usize {
        self.to_xml().serialized_size()
    }

    // -------------------- XML serialization ---------------------------

    /// Serialize as an XML tree (§3.1).
    pub fn to_xml(&self) -> Tree {
        let mut t = Tree::new("expr");
        let root = t.root();
        self.write_xml(&mut t, root);
        // unwrap the single-child wrapper: root becomes the constructor.
        // A zero-copy view: the wrapper node stays in the arena, unreached.
        let only = t.children(root)[0];
        t.subtree(only).expect("wrapper child is a valid node")
    }

    fn write_xml(&self, t: &mut Tree, parent: NodeId) {
        match self {
            Expr::Tree { tree, at } => {
                let el = t.add_element(parent, "tree");
                t.set_attr(el, "at", at.index().to_string())
                    .expect("element");
                t.graft(el, tree, tree.root()).expect("element");
            }
            Expr::Doc { name, at } => {
                let el = t.add_element(parent, "doc");
                t.set_attr(el, "name", name.as_str()).expect("element");
                t.set_attr(el, "at", at.to_string()).expect("element");
            }
            Expr::Apply { query, args } => {
                let el = t.add_element(parent, "apply");
                t.set_attr(el, "def-at", query.def_at.index().to_string())
                    .expect("element");
                let q = query.query.to_xml();
                t.graft(el, &q, q.root()).expect("element");
                let argsel = t.add_element(el, "args");
                for a in args {
                    a.write_xml(t, argsel);
                }
            }
            Expr::Send { dest, payload } => {
                let el = t.add_element(parent, "send");
                match dest {
                    SendDest::Peer(p) => {
                        t.set_attr(el, "peer", p.index().to_string())
                            .expect("element");
                    }
                    SendDest::Nodes(addrs) => {
                        for a in addrs {
                            t.add_text_element(el, "forw", format_addr(a));
                        }
                    }
                    SendDest::NewDoc { peer, name } => {
                        t.set_attr(el, "newdoc-peer", peer.index().to_string())
                            .expect("element");
                        t.set_attr(el, "newdoc-name", name.as_str())
                            .expect("element");
                    }
                }
                let pl = t.add_element(el, "payload");
                payload.write_xml(t, pl);
            }
            Expr::Sc {
                provider,
                service,
                params,
                forward,
            } => {
                let el = t.add_element(parent, "sc");
                t.add_text_element(el, "peer", provider.to_string());
                t.add_text_element(el, "service", service.as_str());
                for (i, p) in params.iter().enumerate() {
                    let pe = t.add_element(el, format!("param{}", i + 1).as_str());
                    p.write_xml(t, pe);
                }
                for a in forward {
                    t.add_text_element(el, "forw", format_addr(a));
                }
            }
            Expr::EvalAt { peer, expr } => {
                let el = t.add_element(parent, "evalat");
                t.set_attr(el, "peer", peer.index().to_string())
                    .expect("element");
                expr.write_xml(t, el);
            }
            Expr::Deploy {
                to,
                query,
                as_service,
            } => {
                let el = t.add_element(parent, "deploy");
                t.set_attr(el, "to", to.index().to_string())
                    .expect("element");
                t.set_attr(el, "as", as_service.as_str()).expect("element");
                t.set_attr(el, "def-at", query.def_at.index().to_string())
                    .expect("element");
                let q = query.query.to_xml();
                t.graft(el, &q, q.root()).expect("element");
            }
            Expr::Seq(es) => {
                let el = t.add_element(parent, "seq");
                for e in es {
                    e.write_xml(t, el);
                }
            }
        }
    }

    /// Parse an expression back from its XML form.
    pub fn from_xml(t: &Tree, node: NodeId) -> CoreResult<Expr> {
        let label = t
            .label(node)
            .ok_or_else(|| CoreError::Malformed("expression node is text".into()))?
            .to_string();
        let peer_attr = |attr: &str| -> CoreResult<PeerId> {
            t.attr(node, attr)
                .and_then(|v| v.parse::<u32>().ok())
                .map(PeerId)
                .ok_or_else(|| CoreError::Malformed(format!("<{label}> lacks @{attr}")))
        };
        match label.as_str() {
            "tree" => {
                let at = peer_attr("at")?;
                let children = t.children(node);
                if children.len() != 1 {
                    return Err(CoreError::Malformed(
                        "<tree> must wrap exactly one tree".into(),
                    ));
                }
                Ok(Expr::Tree {
                    // Zero-copy: share the decoded message arena rather
                    // than re-materializing the literal tree.
                    tree: t.subtree(children[0])?,
                    at,
                })
            }
            "doc" => {
                let name = t
                    .attr(node, "name")
                    .ok_or_else(|| CoreError::Malformed("<doc> lacks @name".into()))?;
                let at = match t.attr(node, "at") {
                    Some("any") => PeerRef::Any,
                    Some(s) => PeerRef::At(PeerId(
                        s.trim_start_matches('p')
                            .parse()
                            .map_err(|_| CoreError::Malformed(format!("bad peer ref `{s}`")))?,
                    )),
                    None => return Err(CoreError::Malformed("<doc> lacks @at".into())),
                };
                Ok(Expr::Doc {
                    name: DocName::new(name),
                    at,
                })
            }
            "apply" => {
                let def_at = peer_attr("def-at")?;
                let qnode = t
                    .first_child_labeled(node, "query")
                    .ok_or_else(|| CoreError::Malformed("<apply> lacks <query>".into()))?;
                let query = Query::from_xml(t, qnode)?;
                let argsel = t
                    .first_child_labeled(node, "args")
                    .ok_or_else(|| CoreError::Malformed("<apply> lacks <args>".into()))?;
                let args = t
                    .children(argsel)
                    .iter()
                    .map(|&c| Expr::from_xml(t, c))
                    .collect::<CoreResult<Vec<_>>>()?;
                Ok(Expr::Apply {
                    query: LocatedQuery::new(query, def_at),
                    args,
                })
            }
            "send" => {
                let payload_el = t
                    .first_child_labeled(node, "payload")
                    .ok_or_else(|| CoreError::Malformed("<send> lacks <payload>".into()))?;
                let inner = t.children(payload_el);
                if inner.len() != 1 {
                    return Err(CoreError::Malformed(
                        "<payload> must wrap exactly one expression".into(),
                    ));
                }
                let payload = Box::new(Expr::from_xml(t, inner[0])?);
                let dest = if let Some(p) = t.attr(node, "peer") {
                    SendDest::Peer(PeerId(
                        p.parse()
                            .map_err(|_| CoreError::Malformed(format!("bad @peer `{p}`")))?,
                    ))
                } else if let Some(p) = t.attr(node, "newdoc-peer") {
                    SendDest::NewDoc {
                        peer: PeerId(p.parse().map_err(|_| {
                            CoreError::Malformed(format!("bad @newdoc-peer `{p}`"))
                        })?),
                        name: DocName::new(t.attr(node, "newdoc-name").ok_or_else(|| {
                            CoreError::Malformed("<send> lacks @newdoc-name".into())
                        })?),
                    }
                } else {
                    let addrs = t
                        .children_labeled(node, "forw")
                        .map(|c| parse_addr(&t.text(c)))
                        .collect::<CoreResult<Vec<_>>>()?;
                    if addrs.is_empty() {
                        return Err(CoreError::Malformed("<send> lacks a destination".into()));
                    }
                    SendDest::Nodes(addrs)
                };
                Ok(Expr::Send { dest, payload })
            }
            "sc" => {
                let peer_el = t
                    .first_child_labeled(node, "peer")
                    .ok_or_else(|| CoreError::Malformed("<sc> lacks <peer>".into()))?;
                let provider = match t.text(peer_el).as_str() {
                    "any" => PeerRef::Any,
                    s => PeerRef::At(PeerId(
                        s.trim_start_matches('p')
                            .parse()
                            .map_err(|_| CoreError::Malformed(format!("bad provider `{s}`")))?,
                    )),
                };
                let svc_el = t
                    .first_child_labeled(node, "service")
                    .ok_or_else(|| CoreError::Malformed("<sc> lacks <service>".into()))?;
                let service = ServiceName::new(t.text(svc_el));
                let mut params = Vec::new();
                for i in 1.. {
                    match t.first_child_labeled(node, &format!("param{i}")) {
                        Some(pe) => {
                            let inner = t.children(pe);
                            if inner.len() != 1 {
                                return Err(CoreError::Malformed(format!(
                                    "<param{i}> must wrap exactly one expression"
                                )));
                            }
                            params.push(Expr::from_xml(t, inner[0])?);
                        }
                        None => break,
                    }
                }
                let forward = t
                    .children_labeled(node, "forw")
                    .map(|c| parse_addr(&t.text(c)))
                    .collect::<CoreResult<Vec<_>>>()?;
                Ok(Expr::Sc {
                    provider,
                    service,
                    params,
                    forward,
                })
            }
            "evalat" => {
                let peer = peer_attr("peer")?;
                let inner = t.children(node);
                if inner.len() != 1 {
                    return Err(CoreError::Malformed(
                        "<evalat> must wrap exactly one expression".into(),
                    ));
                }
                Ok(Expr::EvalAt {
                    peer,
                    expr: Box::new(Expr::from_xml(t, inner[0])?),
                })
            }
            "deploy" => {
                let to = peer_attr("to")?;
                let def_at = peer_attr("def-at")?;
                let as_service = ServiceName::new(
                    t.attr(node, "as")
                        .ok_or_else(|| CoreError::Malformed("<deploy> lacks @as".into()))?,
                );
                let qnode = t
                    .first_child_labeled(node, "query")
                    .ok_or_else(|| CoreError::Malformed("<deploy> lacks <query>".into()))?;
                Ok(Expr::Deploy {
                    to,
                    query: LocatedQuery::new(Query::from_xml(t, qnode)?, def_at),
                    as_service,
                })
            }
            "seq" => {
                let es = t
                    .children(node)
                    .iter()
                    .map(|&c| Expr::from_xml(t, c))
                    .collect::<CoreResult<Vec<_>>>()?;
                Ok(Expr::Seq(es))
            }
            other => Err(CoreError::Malformed(format!(
                "unknown expression constructor <{other}>"
            ))),
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Tree { tree, at } => {
                write!(f, "tree[{}B]@{at}", tree.serialized_size())
            }
            Expr::Doc { name, at } => write!(f, "{name}@{at}"),
            Expr::Apply { query, args } => {
                write!(f, "{}@{}(", query.query, query.def_at)?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            Expr::Send { dest, payload } => match dest {
                SendDest::Peer(p) => write!(f, "send({p}, {payload})"),
                SendDest::Nodes(a) => {
                    write!(f, "send([")?;
                    for (i, n) in a.iter().enumerate() {
                        if i > 0 {
                            write!(f, ", ")?;
                        }
                        write!(f, "{n}")?;
                    }
                    write!(f, "], {payload})")
                }
                SendDest::NewDoc { peer, name } => {
                    write!(f, "send({name}@{peer}, {payload})")
                }
            },
            Expr::Sc {
                provider,
                service,
                params,
                forward,
            } => {
                write!(f, "sc({provider}, {service}, [")?;
                for (i, p) in params.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, "], [")?;
                for (i, a) in forward.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, "])")
            }
            Expr::EvalAt { peer, expr } => write!(f, "eval@{peer}({expr})"),
            Expr::Deploy {
                to,
                query,
                as_service,
            } => write!(f, "deploy({to}, {} as {as_service})", query.query),
            Expr::Seq(es) => {
                write!(f, "seq(")?;
                for (i, e) in es.iter().enumerate() {
                    if i > 0 {
                        write!(f, "; ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, ")")
            }
        }
    }
}

/// Format a node address for the wire: `doc#index@pN`.
pub fn format_addr(a: &NodeAddr) -> String {
    format!("{}#{}@p{}", a.doc, a.node.index(), a.peer.0)
}

/// Parse a wire node address.
pub fn parse_addr(s: &str) -> CoreResult<NodeAddr> {
    let (doc, rest) = s
        .split_once('#')
        .ok_or_else(|| CoreError::Malformed(format!("bad node address `{s}`")))?;
    let (idx, peer) = rest
        .split_once("@p")
        .ok_or_else(|| CoreError::Malformed(format!("bad node address `{s}`")))?;
    let node = idx
        .parse::<usize>()
        .map_err(|_| CoreError::Malformed(format!("bad node index in `{s}`")))?;
    let peer = peer
        .parse::<u32>()
        .map_err(|_| CoreError::Malformed(format!("bad peer in `{s}`")))?;
    // The index came off the wire: an overflow is a typed decode error
    // (`CoreError::Xml(IndexOverflow)`), not a panic.
    Ok(NodeAddr::new(PeerId(peer), doc, NodeId::from_index(node)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_query() -> Query {
        Query::parse(
            "sel",
            r#"for $p in $0//pkg where $p/size/text() > 10 return {$p}"#,
        )
        .unwrap()
    }

    fn samples() -> Vec<Expr> {
        let q = LocatedQuery::new(sample_query(), PeerId(0));
        vec![
            Expr::Tree {
                tree: Tree::parse("<a><b>1</b></a>").unwrap(),
                at: PeerId(2),
            },
            Expr::Doc {
                name: "catalog".into(),
                at: PeerRef::At(PeerId(1)),
            },
            Expr::Doc {
                name: "catalog".into(),
                at: PeerRef::Any,
            },
            Expr::Apply {
                query: q.clone(),
                args: vec![Expr::Doc {
                    name: "catalog".into(),
                    at: PeerRef::At(PeerId(1)),
                }],
            },
            Expr::Send {
                dest: SendDest::Peer(PeerId(0)),
                payload: Box::new(Expr::Doc {
                    name: "d".into(),
                    at: PeerRef::At(PeerId(1)),
                }),
            },
            Expr::Send {
                dest: SendDest::Nodes(vec![
                    NodeAddr::new(PeerId(1), "d1", NodeId::from_index(4).unwrap()),
                    NodeAddr::new(PeerId(2), "d2", NodeId::from_index(0).unwrap()),
                ]),
                payload: Box::new(Expr::Tree {
                    tree: Tree::parse("<x/>").unwrap(),
                    at: PeerId(0),
                }),
            },
            Expr::Send {
                dest: SendDest::NewDoc {
                    peer: PeerId(2),
                    name: "fresh".into(),
                },
                payload: Box::new(Expr::Doc {
                    name: "d".into(),
                    at: PeerRef::At(PeerId(0)),
                }),
            },
            Expr::Sc {
                provider: PeerRef::Any,
                service: "lookup".into(),
                params: vec![Expr::Tree {
                    tree: Tree::parse("<q>vim</q>").unwrap(),
                    at: PeerId(0),
                }],
                forward: vec![NodeAddr::new(
                    PeerId(0),
                    "inbox",
                    NodeId::from_index(0).unwrap(),
                )],
            },
            Expr::EvalAt {
                peer: PeerId(1),
                expr: Box::new(Expr::Send {
                    dest: SendDest::Peer(PeerId(0)),
                    payload: Box::new(Expr::Doc {
                        name: "d".into(),
                        at: PeerRef::At(PeerId(1)),
                    }),
                }),
            },
            Expr::Deploy {
                to: PeerId(2),
                query: q,
                as_service: "sel-svc".into(),
            },
            Expr::Seq(vec![
                Expr::Send {
                    dest: SendDest::NewDoc {
                        peer: PeerId(0),
                        name: "tmp".into(),
                    },
                    payload: Box::new(Expr::Doc {
                        name: "d".into(),
                        at: PeerRef::At(PeerId(1)),
                    }),
                },
                Expr::Doc {
                    name: "tmp".into(),
                    at: PeerRef::At(PeerId(0)),
                },
            ]),
        ]
    }

    #[test]
    fn xml_roundtrip_all_constructors() {
        for e in samples() {
            let xml = e.to_xml();
            let back = Expr::from_xml(&xml, xml.root())
                .unwrap_or_else(|err| panic!("{err} for {}", xml.serialize()));
            assert_eq!(e.fingerprint(), back.fingerprint(), "{e}");
        }
    }

    #[test]
    fn addresses_roundtrip() {
        let a = NodeAddr::new(PeerId(3), "doc-x", NodeId::from_index(42).unwrap());
        assert_eq!(parse_addr(&format_addr(&a)).unwrap(), a);
        assert!(parse_addr("garbage").is_err());
        assert!(parse_addr("d#x@p1").is_err());
        assert!(parse_addr("d#1@px").is_err());
    }

    #[test]
    fn children_and_with_child() {
        let e = samples().remove(3); // Apply
        assert_eq!(e.children().len(), 1);
        let replaced = e.with_child(
            0,
            Expr::Doc {
                name: "other".into(),
                at: PeerRef::At(PeerId(2)),
            },
        );
        match &replaced {
            Expr::Apply { args, .. } => {
                assert!(matches!(&args[0], Expr::Doc { name, .. } if name.as_str() == "other"));
            }
            other => panic!("{other}"),
        }
    }

    #[test]
    fn size_counts_nodes() {
        let es = samples();
        assert_eq!(es[0].size(), 1);
        assert_eq!(es[3].size(), 2);
        assert_eq!(es[10].size(), 4);
    }

    #[test]
    fn mentioned_peers_collected() {
        let e = samples().remove(8); // EvalAt(1, Send(0, Doc@1))
        assert_eq!(e.mentioned_peers(), vec![PeerId(0), PeerId(1)]);
    }

    #[test]
    fn display_is_readable() {
        let e = samples().remove(4);
        assert_eq!(e.to_string(), "send(p0, d@p1)");
        let sc = samples().remove(7);
        assert!(sc.to_string().starts_with("sc(any, lookup"));
    }

    #[test]
    fn wire_size_positive_and_stable() {
        for e in samples() {
            assert!(e.wire_size() > 10, "{e}");
            assert_eq!(e.wire_size(), e.fingerprint().len());
        }
    }

    #[test]
    fn from_xml_rejects_malformed() {
        for bad in [
            "<unknown/>",
            "<tree/>",
            "<doc/>",
            "<send><payload><doc name=\"d\" at=\"0\"/></payload></send>",
            "<apply def-at=\"0\"/>",
            "<evalat peer=\"0\"/>",
            "<sc/>",
            "<deploy to=\"1\"/>",
        ] {
            let t = Tree::parse(bad).unwrap();
            assert!(Expr::from_xml(&t, t.root()).is_err(), "{bad}");
        }
    }
}
