//! The message-driven evaluation engine.
//!
//! `eval@p(e)` used to be a depth-first recursion that sent each message
//! and immediately received it, so every transfer was serialized on the
//! global clock. This module replaces that with a small discrete-event
//! engine: evaluation of an expression is decomposed into **continuation
//! tasks** (one per pending definition (1)–(9) step), messages carry an
//! `Intent` describing their receiver-side effect, and an
//! `EvalSession` drives tasks and in-flight messages to quiescence.
//! Independent transfers now genuinely overlap — the makespan of a
//! fan-out is its critical path, not the sum of its byte costs — while
//! per-link message/byte accounting stays identical to the sequential
//! engine (counters are additive and order-invariant).
//!
//! # Structure
//!
//! * [`Wire`] — what actually travels: the [`AxmlMessage`] (whose
//!   serialized payload is what the link charges) plus the `Intent`
//!   applied on delivery.
//! * `EvalSession` — pure session state: result slots, the ready
//!   queue, waiting continuations, one mailbox per peer, and a seeded
//!   PRNG used only to break ties between messages arriving at the
//!   exact same instant (determinism: no wall clock, no global RNG).
//! * `AxmlSystem::run_session` — the driver loop: drain ready tasks,
//!   then deliver the earliest batch of in-flight messages to the
//!   peers' mailboxes, repeat until quiescent.
//!
//! Every definition keeps its observable semantics from the sequential
//! evaluator: the same messages with the same charged bytes on the same
//! links, the same definition counters, and the same final state Σ.
//! Sequential chains (request → response) even keep identical timing;
//! only independent transfers finish earlier.

use crate::driver::{
    precompute, DriverKind, Job, ParallelDriver, Precomp, SequentialDriver, SessionDriver,
};
use crate::error::{CoreError, CoreResult, EngineError};
use crate::expr::{Expr, PeerRef, SendDest};
use crate::message::AxmlMessage;
use crate::sc::{ActivationMode, ScNode, ScProvider};
use crate::service::Service;
use crate::system::AxmlSystem;
use axml_net::{FramedPayload, NetError, Payload};
use axml_obs::{DataTag, TraceEvent};
use axml_prng::SplitMix64;
use axml_query::Query;
use axml_xml::ids::{DocName, NodeAddr, PeerId, ServiceName};
use axml_xml::store::Document;
use axml_xml::tree::{NodeId, Tree};
use std::collections::VecDeque;

/// A result destination: `(slot, part)` inside the session's slot table.
pub(crate) type Out = (usize, usize);

/// Salt separating the retry-jitter PRNG stream from the session
/// tie-breaking stream and the network fault stream.
const RETRY_STREAM_SALT: u64 = 0xBACC_0FF5_1077_E55A;

/// What travels on a link: the charged message plus the receiver-side
/// continuation. Only `msg` contributes to the wire size — intents are
/// bookkeeping for the simulation, not payload.
pub struct Wire {
    pub(crate) msg: AxmlMessage,
    pub(crate) intent: Intent,
}

impl Payload for Wire {
    fn wire_size(&self) -> usize {
        self.msg.wire_size()
    }
}

impl FramedPayload for Wire {
    /// Only the [`AxmlMessage`] crosses the wire: the `Intent` is the
    /// sender-side continuation bookkeeping (which slot a reply fills),
    /// not message content — a real remote peer would reconstruct it
    /// from correlation ids.
    fn frame_payload(&self) -> Vec<u8> {
        self.msg.frame_bytes()
    }
}

impl std::fmt::Debug for Wire {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Wire({})", self.msg.kind())
    }
}

/// The effect a message has when it reaches its receiver's mailbox.
pub(crate) enum Intent {
    /// Pure data transfer; the send's value was already determined.
    None,
    /// Fill a waiting slot with a forest (responses, fetched data).
    Reply { forest: Vec<Tree>, out: Out },
    /// Definition (5) / delegated-send shape: the receiver evaluates
    /// `expr` and ships the result back as `Data(tag)` into `out`.
    EvalAndReply {
        expr: Expr,
        reply_to: PeerId,
        tag: DataTag,
        out: Out,
    },
    /// General `eval@p`: the receiver evaluates `expr`; the delegating
    /// side's value is ∅, filled into `done` once the inner completes.
    EvalHere { expr: Expr, done: Out },
    /// Definition (4) / forward lists: graft `forest` under `addr`.
    Graft {
        addr: NodeAddr,
        forest: Vec<Tree>,
        notify: Option<Out>,
    },
    /// `send(d@p, t)`: install a new document at the receiver.
    InstallDoc {
        name: DocName,
        forest: Vec<Tree>,
        notify: Out,
    },
    /// Definition (8): register the shipped query as a service.
    Deploy {
        query: Query,
        as_service: ServiceName,
        notify: Out,
    },
    /// Definition (6) step 1 arriving: the provider runs the service.
    Invoke {
        caller: PeerId,
        service: ServiceName,
        params: Vec<Vec<Tree>>,
        forward: Vec<NodeAddr>,
        call_id: u64,
        out: Out,
    },
    /// Replica maintenance: graft into the receiving replica and pump
    /// its subscriptions.
    ReplicaFeed { doc: DocName, tree: Tree },
}

/// One fixed-arity result slot: ready when every part is filled.
struct Slot {
    parts: Vec<Option<Vec<Tree>>>,
    missing: usize,
}

/// A task on the ready queue.
pub(crate) enum Runnable {
    /// Decompose `expr` at a peer; its value lands in `out`.
    Eval { at: PeerId, expr: Expr, out: Out },
    /// Resume a continuation whose inputs are all available.
    Resume {
        peer: PeerId,
        cont: Cont,
        input: Vec<Vec<Tree>>,
    },
}

impl Runnable {
    fn peer(&self) -> PeerId {
        match self {
            Runnable::Eval { at, .. } => *at,
            Runnable::Resume { peer, .. } => *peer,
        }
    }

    fn name(&self) -> &'static str {
        match self {
            Runnable::Eval { .. } => "eval",
            Runnable::Resume { cont, .. } => cont.name(),
        }
    }
}

/// A continuation waiting on a slot.
struct Pending {
    wait: usize,
    peer: PeerId,
    cont: Cont,
}

/// The suspended remainder of one definition's evaluation.
pub(crate) enum Cont {
    /// Definitions (2)/(7): run the query over the gathered argument
    /// forests (`skip` leading parts are the remote-definition gate).
    ApplyFinish { query: Query, skip: usize, out: Out },
    /// Definition (6): all `sc` parameters evaluated — start the call.
    ScReady {
        provider: ScProvider,
        service: ServiceName,
        forward: Vec<NodeAddr>,
        out: Out,
    },
    /// Definition (3): payload evaluated — ship it.
    SendPeer { dest: PeerId, out: Out },
    /// Definition (4): payload evaluated — deliver to the node list.
    SendNodes { addrs: Vec<NodeAddr>, out: Out },
    /// `send(d@p, t)`: payload evaluated — install the new document.
    SendNewDoc {
        peer: PeerId,
        name: DocName,
        out: Out,
    },
    /// Definition (1): embedded `sc` results ready — graft them back
    /// into the copied tree (`grafts[i]` is part `i`'s parent; `None`
    /// for forward-listed calls whose results landed elsewhere).
    TreeFinish {
        tree: Tree,
        grafts: Vec<Option<NodeId>>,
        out: Out,
    },
    /// Rule (13): one sequence step finished — run the rest.
    SeqStep { rest: VecDeque<Expr>, out: Out },
    /// Remote fetch/delegation: the inner result must travel back.
    ReplyData {
        reply_to: PeerId,
        tag: DataTag,
        remote_out: Out,
    },
    /// Completion gate: inputs arrived, the observable value is ∅.
    Discard { out: Out },
}

impl Cont {
    fn name(&self) -> &'static str {
        match self {
            Cont::ApplyFinish { .. } => "apply",
            Cont::ScReady { .. } => "sc",
            Cont::SendPeer { .. } => "send",
            Cont::SendNodes { .. } => "send-nodes",
            Cont::SendNewDoc { .. } => "send-newdoc",
            Cont::TreeFinish { .. } => "tree",
            Cont::SeqStep { .. } => "seq",
            Cont::ReplyData { .. } => "reply",
            Cont::Discard { .. } => "fill",
        }
    }
}

/// A message popped off the network, parked in its receiver's mailbox.
pub(crate) struct Delivery {
    pub(crate) from: PeerId,
    pub(crate) to: PeerId,
    pub(crate) wire: Wire,
    pub(crate) at: f64,
}

/// One service activation as handed to `start_service_call`: who calls
/// what, with which parameter forests and forward list.
struct ScCall<'a> {
    caller: PeerId,
    provider: ScProvider,
    service: &'a ServiceName,
    param_forests: Vec<Vec<Tree>>,
    forward: &'a [NodeAddr],
}

/// One evaluation session: everything the engine needs besides Σ.
///
/// Sessions are pure data — all logic lives in `AxmlSystem` methods so
/// the driver can borrow peers, network and observability freely.
pub(crate) struct EvalSession {
    slots: Vec<Slot>,
    pub(crate) ready: VecDeque<Runnable>,
    waiting: Vec<Pending>,
    /// Per-peer arrival mailboxes, keyed by peer index. Sparse — only
    /// peers that actually receive something get an entry, so a session
    /// over 10⁵ peers costs O(touched peers), and the ascending key
    /// iteration reproduces the dense `0..n` drain order bit-exactly.
    pub(crate) mailboxes: std::collections::BTreeMap<u32, VecDeque<Delivery>>,
    rng: SplitMix64,
    /// Result trees delivered by arrival-side subscription pumps
    /// (replica maintenance accumulates its downstream count here).
    pub(crate) delivered: usize,
    /// Whether this session collapses identical service calls (parallel
    /// driver only — the sequential reference never caches).
    collapse: bool,
    /// Session-scoped service-result cache: `(provider, service,
    /// canonical params) → result @ epoch`. Entries are only reused
    /// while the provider's state epoch is unchanged, so a hit is
    /// bit-identical to recomputing.
    svc_cache: std::collections::HashMap<(PeerId, ServiceName, String), CachedCall>,
}

/// One memoized service evaluation (see `EvalSession::svc_cache`).
struct CachedCall {
    epoch: u64,
    results: Vec<Tree>,
    payload: Option<String>,
}

impl EvalSession {
    fn new(seed: u64, collapse: bool) -> Self {
        EvalSession {
            slots: Vec::new(),
            ready: VecDeque::new(),
            waiting: Vec::new(),
            mailboxes: std::collections::BTreeMap::new(),
            rng: SplitMix64::new(seed),
            delivered: 0,
            collapse,
            svc_cache: std::collections::HashMap::new(),
        }
    }

    /// Allocate a slot with `parts` ordered parts (0 parts = ready now).
    pub(crate) fn new_slot(&mut self, parts: usize) -> usize {
        self.slots.push(Slot {
            parts: vec![None; parts],
            missing: parts,
        });
        self.slots.len() - 1
    }

    /// Take the first part of a finished slot (the session's result).
    ///
    /// A part that was never filled means a delivery was lost somewhere
    /// between the peers — that is a [`EngineError::LostResult`], not an
    /// empty answer. (A part filled with an empty forest is a perfectly
    /// valid result and comes back as `Ok(vec![])`.)
    pub(crate) fn take(&mut self, slot: usize) -> Result<Vec<Tree>, EngineError> {
        self.slots[slot]
            .parts
            .get_mut(0)
            .and_then(Option::take)
            .ok_or(EngineError::LostResult { slot, part: 0 })
    }

    fn gather(&mut self, slot: usize) -> Result<Vec<Vec<Tree>>, EngineError> {
        self.slots[slot]
            .parts
            .iter_mut()
            .enumerate()
            .map(|(part, p)| p.take().ok_or(EngineError::LostResult { slot, part }))
            .collect()
    }
}

impl AxmlSystem {
    /// A fresh session with a deterministic, per-session PRNG seed.
    pub(crate) fn new_session(&mut self) -> EvalSession {
        let n = self.sessions;
        self.sessions += 1;
        EvalSession::new(
            self.engine_seed ^ n.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            matches!(self.driver, DriverKind::Parallel { .. }),
        )
    }

    /// Put a task on the ready queue (emitting [`TraceEvent::TaskScheduled`]).
    pub(crate) fn schedule(&mut self, s: &mut EvalSession, task: Runnable) {
        let peer = task.peer();
        let name = task.name();
        let at_ms = self.net.now_ms();
        self.obs.emit(|| TraceEvent::TaskScheduled {
            peer,
            task: name.into(),
            at_ms,
        });
        s.ready.push_back(task);
    }

    /// Drive the session to quiescence: run ready tasks, then deliver
    /// the earliest batch of in-flight messages, until both are empty.
    /// On error the network's in-flight queue is cleared (statistics are
    /// kept — the bytes were charged when they entered the link). Either
    /// way the trace sink is flushed (best effort) so file-backed sinks
    /// are durable up to every quiescence point.
    pub(crate) fn run_session(&mut self, s: &mut EvalSession) -> CoreResult<()> {
        let r = match self.driver {
            DriverKind::Sequential => SequentialDriver.drive(self, s),
            DriverKind::Parallel { threads } => ParallelDriver { threads }.drive(self, s),
        };
        if r.is_err() {
            self.net.clear_in_flight();
        }
        if let Err(e) = self.obs.flush() {
            eprintln!("axml-core: trace flush at session quiescence failed: {e}");
        }
        r
    }

    /// The single-threaded reference loop (see [`crate::driver`]).
    pub(crate) fn run_session_sequential(&mut self, s: &mut EvalSession) -> CoreResult<()> {
        loop {
            while let Some(task) = s.ready.pop_front() {
                self.run_task(s, task, None)?;
            }
            if !self.next_arrival_batch(s) {
                break;
            }
            // Deliveries never push into mailboxes (only
            // `next_arrival_batch` does), so taking the whole map and
            // draining in ascending peer order is exactly the old dense
            // `0..n` per-peer scan.
            for (_, mut mb) in std::mem::take(&mut s.mailboxes) {
                while let Some(d) = mb.pop_front() {
                    self.deliver(s, d, None)?;
                }
            }
        }
        self.check_quiescent(s)
    }

    /// The wave-based parallel driver (see [`crate::driver`] for the
    /// precompute/commit split and the equivalence argument). Spawned
    /// tasks land on `s.ready` *behind* the wave being committed, so
    /// the global task order is exactly the sequential FIFO; deliveries
    /// never push into mailboxes, so draining all mailboxes up front is
    /// order-equivalent to the sequential per-peer drain.
    pub(crate) fn run_session_parallel(
        &mut self,
        s: &mut EvalSession,
        threads: usize,
    ) -> CoreResult<()> {
        loop {
            while !s.ready.is_empty() {
                let wave: Vec<Runnable> = s.ready.drain(..).collect();
                let jobs: Vec<(usize, Job<'_>)> = wave
                    .iter()
                    .enumerate()
                    .filter_map(|(i, t)| Job::for_task(t).map(|j| (i, j)))
                    .collect();
                let (mut pre, wstats) =
                    precompute(&self.peers, &self.state_epochs, jobs, wave.len(), threads);
                self.note_wave(&wstats);
                for (i, task) in wave.into_iter().enumerate() {
                    let p = pre[i].take();
                    self.run_task(s, task, p)?;
                }
            }
            if !self.next_arrival_batch(s) {
                break;
            }
            let mut wave: Vec<Delivery> = Vec::new();
            for (_, mb) in std::mem::take(&mut s.mailboxes) {
                wave.extend(mb);
            }
            let jobs: Vec<(usize, Job<'_>)> = wave
                .iter()
                .enumerate()
                .filter_map(|(i, d)| Job::for_delivery(d).map(|j| (i, j)))
                .collect();
            let (mut pre, wstats) =
                precompute(&self.peers, &self.state_epochs, jobs, wave.len(), threads);
            self.note_wave(&wstats);
            for (i, d) in wave.into_iter().enumerate() {
                let p = pre[i].take();
                self.deliver(s, d, p)?;
            }
        }
        self.check_quiescent(s)
    }

    fn note_wave(&mut self, w: &crate::driver::WaveStats) {
        self.par_stats.waves += 1;
        self.par_stats.jobs += w.jobs;
        self.par_stats.dedup_hits += w.dedup_hits;
    }

    /// Pop every message arriving at the earliest pending instant,
    /// shuffle the batch with the session PRNG (deterministic
    /// tie-breaking, not biased by send order) and enqueue each message
    /// into its receiver's mailbox. Returns `false` when nothing is in
    /// flight. Both drivers share this — it is the *only* consumer of
    /// the session PRNG, which keeps the stream identical across them.
    fn next_arrival_batch(&mut self, s: &mut EvalSession) -> bool {
        if !self.net.has_pending() {
            return false;
        }
        let t = self
            .net
            .peek_arrival()
            .expect("pending messages have an arrival time");
        let mut batch = Vec::new();
        while self.net.peek_arrival() == Some(t) {
            let (from, to, wire, at) = self.net.recv_from().expect("peeked arrival must pop");
            batch.push(Delivery { from, to, wire, at });
        }
        s.rng.shuffle(&mut batch);
        for d in batch {
            s.mailboxes.entry(d.to.0).or_default().push_back(d);
        }
        true
    }

    fn check_quiescent(&self, s: &EvalSession) -> CoreResult<()> {
        if let Some(p) = s.waiting.first() {
            return Err(EngineError::Stalled {
                peer: p.peer,
                waiting: s.waiting.len(),
            }
            .into());
        }
        Ok(())
    }

    pub(crate) fn run_task(
        &mut self,
        s: &mut EvalSession,
        task: Runnable,
        pre: Option<Precomp>,
    ) -> CoreResult<()> {
        match task {
            Runnable::Eval { at, expr, out } => self.step_eval(s, at, expr, out),
            Runnable::Resume { peer, cont, input } => self.resume(s, peer, cont, input, pre),
        }
    }

    pub(crate) fn deliver(
        &mut self,
        s: &mut EvalSession,
        d: Delivery,
        pre: Option<Precomp>,
    ) -> CoreResult<()> {
        let Delivery { from, to, wire, at } = d;
        let kind = wire.msg.kind();
        let charged = self
            .net
            .link(from, to)
            .charged_bytes_u64(wire.msg.wire_size());
        self.obs.emit(|| TraceEvent::MessageDelivered {
            from,
            to,
            kind,
            bytes: charged,
            at_ms: at,
        });
        self.apply_intent(s, to, wire.intent, pre)
    }

    /// Send a message with its receiver-side intent. Local sends are
    /// free (matching `NetStats` semantics): the intent applies now.
    ///
    /// Cross-peer sends go through the retry loop: each failed attempt
    /// with a *transient* [`NetError`] (injected drop, outage window,
    /// crashed peer) charges the policy's timeout plus a deterministic
    /// jittered backoff on the simulated clock and tries again, until
    /// the [`crate::retry::RetryPolicy`] budget runs out. With the
    /// default `RetryPolicy::none()` a down link still surfaces as the
    /// historical `EngineError::Undeliverable`.
    pub(crate) fn send_wire(
        &mut self,
        s: &mut EvalSession,
        from: PeerId,
        to: PeerId,
        msg: AxmlMessage,
        intent: Intent,
    ) -> CoreResult<()> {
        self.check_peer(from)?;
        self.check_peer(to)?;
        if from == to {
            return self.apply_intent(s, to, intent, None);
        }
        let kind = msg.kind();
        let charged = self.net.link(from, to).charged_bytes_u64(msg.wire_size());
        let mut wire = Wire { msg, intent };
        let mut attempt: u32 = 0;
        let (sent, at) = loop {
            let sent = self.net.now_ms();
            match self.net.send_attempt(from, to, wire) {
                Ok(at) => break (sent, at),
                Err((e, w)) => {
                    wire = w;
                    let dropped = matches!(e, NetError::Dropped(..));
                    let transient =
                        dropped || matches!(e, NetError::LinkDown(..) | NetError::PeerDown(..));
                    if !transient {
                        return Err(e.into());
                    }
                    if dropped {
                        // A drop consumed the attempt on the wire; both
                        // layers must agree it happened (reconciliation).
                        self.obs.metrics.record_drop(from, to);
                        self.obs.emit(|| TraceEvent::MessageDropped {
                            from,
                            to,
                            kind,
                            bytes: charged,
                            at_ms: sent,
                        });
                    }
                    if attempt >= self.retry.max_retries {
                        if attempt == 0 && !dropped {
                            // No-retry config, structurally dead link:
                            // keep the historical typed error.
                            return Err(EngineError::Undeliverable { from, to, kind }.into());
                        }
                        return Err(EngineError::Exhausted {
                            from,
                            to,
                            kind,
                            attempts: attempt + 1,
                        }
                        .into());
                    }
                    let backoff_ms = self.retry_backoff_ms(from, to, attempt);
                    attempt += 1;
                    self.obs.metrics.retries += 1;
                    self.obs.emit(|| TraceEvent::RetryScheduled {
                        from,
                        to,
                        kind,
                        attempt,
                        backoff_ms,
                        at_ms: sent,
                    });
                    self.net.advance(self.retry.timeout_ms + backoff_ms);
                }
            }
        };
        self.obs.metrics.record_message(from, to, kind, charged);
        self.obs.emit(|| TraceEvent::MessageSent {
            from,
            to,
            kind,
            bytes: charged,
            sent_ms: sent,
            at_ms: at,
        });
        Ok(())
    }

    /// The jittered backoff before 0-based retry `attempt` on the
    /// `from → to` link. The jitter stream is derived from the engine
    /// seed, the link, and the global retry counter — never from the
    /// session PRNG — so it is identical across drivers and reproducible
    /// from the seed.
    fn retry_backoff_ms(&self, from: PeerId, to: PeerId, attempt: u32) -> f64 {
        let base = self.retry.backoff_ms(attempt);
        if self.retry.jitter <= 0.0 || base <= 0.0 {
            return base;
        }
        let link = ((from.0 as u64) << 32) | to.0 as u64;
        let mut rng = SplitMix64::new(
            self.engine_seed
                ^ RETRY_STREAM_SALT
                ^ link.wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ self.obs.metrics.retries.wrapping_mul(0xBF58_476D_1CE4_E5B9),
        );
        base * (1.0 + self.retry.jitter * rng.next_f64())
    }

    fn apply_intent(
        &mut self,
        s: &mut EvalSession,
        to: PeerId,
        intent: Intent,
        pre: Option<Precomp>,
    ) -> CoreResult<()> {
        match intent {
            Intent::None => Ok(()),
            Intent::Reply { forest, out } => {
                self.fill(s, out, forest)?;
                Ok(())
            }
            Intent::EvalAndReply {
                expr,
                reply_to,
                tag,
                out,
            } => {
                let slot = s.new_slot(1);
                self.schedule(
                    s,
                    Runnable::Eval {
                        at: to,
                        expr,
                        out: (slot, 0),
                    },
                );
                self.register_pending(
                    s,
                    slot,
                    to,
                    Cont::ReplyData {
                        reply_to,
                        tag,
                        remote_out: out,
                    },
                )?;
                Ok(())
            }
            Intent::EvalHere { expr, done } => {
                let slot = s.new_slot(1);
                self.schedule(
                    s,
                    Runnable::Eval {
                        at: to,
                        expr,
                        out: (slot, 0),
                    },
                );
                self.register_pending(s, slot, to, Cont::Discard { out: done })?;
                Ok(())
            }
            Intent::Graft {
                addr,
                forest,
                notify,
            } => {
                self.graft_at(&addr, &forest)?;
                if let Some(n) = notify {
                    self.fill(s, n, Vec::new())?;
                }
                Ok(())
            }
            Intent::InstallDoc {
                name,
                forest,
                notify,
            } => {
                self.install_new_doc(to, &name, &forest)?;
                self.fill(s, notify, Vec::new())?;
                Ok(())
            }
            Intent::Deploy {
                query,
                as_service,
                notify,
            } => {
                self.peers[to.index()].register_service(Service::declarative(as_service, query));
                self.touch_peer(to);
                self.fill(s, notify, Vec::new())?;
                Ok(())
            }
            Intent::Invoke {
                caller,
                service,
                params,
                forward,
                call_id,
                out,
            } => self.run_service_at(s, to, caller, &service, params, &forward, call_id, out, pre),
            Intent::ReplicaFeed { doc, tree } => {
                let n = self.feed_into(s, to, &doc, tree)?;
                s.delivered += n;
                Ok(())
            }
        }
    }

    /// Fill one slot part; a slot whose last part arrives wakes its
    /// waiting continuation (if registered — otherwise the parts stay
    /// for a later [`AxmlSystem::register_pending`] or `take`).
    fn fill(&mut self, s: &mut EvalSession, out: Out, forest: Vec<Tree>) -> CoreResult<()> {
        let slot = &mut s.slots[out.0];
        debug_assert!(slot.parts[out.1].is_none(), "slot part filled twice");
        slot.parts[out.1] = Some(forest);
        slot.missing -= 1;
        if slot.missing == 0 {
            self.wake(s, out.0)?;
        }
        Ok(())
    }

    fn wake(&mut self, s: &mut EvalSession, slot: usize) -> CoreResult<()> {
        if let Some(ix) = s.waiting.iter().position(|p| p.wait == slot) {
            let Pending { peer, cont, .. } = s.waiting.swap_remove(ix);
            let input = s.gather(slot)?;
            self.schedule(s, Runnable::Resume { peer, cont, input });
        }
        Ok(())
    }

    /// Park `cont` until `slot` is ready (resuming immediately if it
    /// already is — e.g. zero-part gates or all-local fills).
    fn register_pending(
        &mut self,
        s: &mut EvalSession,
        slot: usize,
        peer: PeerId,
        cont: Cont,
    ) -> CoreResult<()> {
        if s.slots[slot].missing == 0 {
            let input = s.gather(slot)?;
            self.schedule(s, Runnable::Resume { peer, cont, input });
        } else {
            s.waiting.push(Pending {
                wait: slot,
                peer,
                cont,
            });
        }
        Ok(())
    }

    /// Decompose one expression node — the task form of definitions
    /// (1)–(9). Each case either fills `out` directly, spawns child
    /// tasks plus a continuation, or ships a message whose intent will.
    fn step_eval(
        &mut self,
        s: &mut EvalSession,
        at: PeerId,
        expr: Expr,
        out: Out,
    ) -> CoreResult<()> {
        match expr {
            // ---- definitions (1)/(5): literal trees -------------------
            Expr::Tree { tree, at: loc } => {
                if loc == at {
                    self.record_def(1, at, "tree");
                    self.materialize_tree_tasks(s, at, &tree, out)
                } else {
                    self.fetch_remote(s, at, loc, Expr::Tree { tree, at: loc }, out)
                }
            }

            // ---- documents (+ definition (9) for d@any) ---------------
            Expr::Doc { name, at: loc } => {
                let (home, concrete) = match loc {
                    PeerRef::At(p) => (p, name),
                    PeerRef::Any => return self.fetch_doc_any(s, at, name, out),
                };
                if home == at {
                    self.record_def(1, at, "doc");
                    let tree = self.peers[at.index()].doc(&concrete, at)?.clone();
                    self.fill(s, out, vec![tree])?;
                    Ok(())
                } else {
                    self.fetch_remote(
                        s,
                        at,
                        home,
                        Expr::Doc {
                            name: concrete,
                            at: PeerRef::At(home),
                        },
                        out,
                    )
                }
            }

            // ---- definitions (2)/(7): query application ---------------
            Expr::Apply { query, args } => {
                if query.query.arity() != args.len() {
                    return Err(CoreError::Query(axml_query::QueryError::ArityMismatch {
                        expected: query.query.arity(),
                        got: args.len(),
                    }));
                }
                // Definition (7): a remote definition is shipped to the
                // evaluation site; part 0 gates on its arrival.
                let gated = query.def_at != at;
                let skip = usize::from(gated);
                let slot = s.new_slot(args.len() + skip);
                if gated {
                    self.record_def(7, at, "apply");
                    let def = query.query.to_xml().serialize();
                    self.send_wire(
                        s,
                        query.def_at,
                        at,
                        AxmlMessage::Data {
                            payload: def,
                            tag: DataTag::QueryDef,
                        },
                        Intent::Reply {
                            forest: Vec::new(),
                            out: (slot, 0),
                        },
                    )?;
                } else {
                    self.record_def(2, at, "apply");
                }
                // Arguments evaluate concurrently — remote fetches for
                // different arguments overlap on independent links.
                for (i, a) in args.into_iter().enumerate() {
                    self.schedule(
                        s,
                        Runnable::Eval {
                            at,
                            expr: a,
                            out: (slot, skip + i),
                        },
                    );
                }
                self.register_pending(
                    s,
                    slot,
                    at,
                    Cont::ApplyFinish {
                        query: query.query,
                        skip,
                        out,
                    },
                )?;
                Ok(())
            }

            // ---- definitions (3)/(4) + send-to-new-doc ----------------
            Expr::Send { dest, payload } => {
                let slot = s.new_slot(1);
                self.schedule(
                    s,
                    Runnable::Eval {
                        at,
                        expr: *payload,
                        out: (slot, 0),
                    },
                );
                let cont = match dest {
                    SendDest::Peer(q) => Cont::SendPeer { dest: q, out },
                    SendDest::Nodes(addrs) => Cont::SendNodes { addrs, out },
                    SendDest::NewDoc { peer, name } => Cont::SendNewDoc { peer, name, out },
                };
                self.register_pending(s, slot, at, cont)?;
                Ok(())
            }

            // ---- definition (6): service calls ------------------------
            Expr::Sc {
                provider,
                service,
                params,
                forward,
            } => {
                let provider = match provider {
                    PeerRef::At(p) => ScProvider::Peer(p),
                    PeerRef::Any => ScProvider::Any,
                };
                let slot = s.new_slot(params.len());
                for (i, p) in params.into_iter().enumerate() {
                    self.schedule(
                        s,
                        Runnable::Eval {
                            at,
                            expr: p,
                            out: (slot, i),
                        },
                    );
                }
                self.register_pending(
                    s,
                    slot,
                    at,
                    Cont::ScReady {
                        provider,
                        service,
                        forward,
                        out,
                    },
                )?;
                Ok(())
            }

            // ---- rules (14)–(16): delegated evaluation ----------------
            Expr::EvalAt { peer, expr: inner } => {
                self.obs.metrics.delegations += 1;
                let now = self.now_ms();
                let (from, to) = (at, peer);
                self.obs.emit(|| TraceEvent::Delegation {
                    from,
                    to,
                    at_ms: now,
                });
                let mut shipped = *inner;
                if peer != at {
                    // The delegated plan crosses the wire (embedded
                    // query definitions travel with it).
                    let expr_xml = shipped.to_xml().serialize();
                    shipped.relocate_query_defs(peer);
                    // Capture the common delegation shape: the inner
                    // expression sends its value straight back to us.
                    let intent = match shipped {
                        Expr::Send {
                            dest: SendDest::Peer(back),
                            payload,
                        } if back == at => Intent::EvalAndReply {
                            expr: *payload,
                            reply_to: at,
                            tag: DataTag::DelegatedResult,
                            out,
                        },
                        other => Intent::EvalHere {
                            expr: other,
                            done: out,
                        },
                    };
                    self.send_wire(s, at, peer, AxmlMessage::Request { expr_xml }, intent)
                } else {
                    match shipped {
                        Expr::Send {
                            dest: SendDest::Peer(back),
                            payload,
                        } if back == at => {
                            self.schedule(
                                s,
                                Runnable::Eval {
                                    at: peer,
                                    expr: *payload,
                                    out,
                                },
                            );
                        }
                        other => {
                            let slot = s.new_slot(1);
                            self.schedule(
                                s,
                                Runnable::Eval {
                                    at: peer,
                                    expr: other,
                                    out: (slot, 0),
                                },
                            );
                            self.register_pending(s, slot, peer, Cont::Discard { out })?;
                        }
                    }
                    Ok(())
                }
            }

            // ---- definition (8): code shipping ------------------------
            Expr::Deploy {
                to,
                query,
                as_service,
            } => {
                self.record_def(8, at, "deploy");
                if query.def_at != to {
                    let gate = s.new_slot(1);
                    self.send_wire(
                        s,
                        query.def_at,
                        to,
                        AxmlMessage::DeployQuery {
                            query_xml: query.query.to_xml().serialize(),
                            as_service: as_service.clone(),
                        },
                        Intent::Deploy {
                            query: query.query,
                            as_service,
                            notify: (gate, 0),
                        },
                    )?;
                    self.register_pending(s, gate, at, Cont::Discard { out })?;
                } else {
                    self.peers[to.index()]
                        .register_service(Service::declarative(as_service, query.query));
                    self.touch_peer(to);
                    self.fill(s, out, Vec::new())?;
                }
                Ok(())
            }

            // ---- sequencing (rule (13) plans) -------------------------
            Expr::Seq(es) => {
                self.obs.metrics.seq_steps += es.len() as u64;
                let mut rest: VecDeque<Expr> = es.into();
                match rest.pop_front() {
                    None => {
                        self.fill(s, out, Vec::new())?;
                        Ok(())
                    }
                    Some(first) => {
                        let slot = s.new_slot(1);
                        self.schedule(
                            s,
                            Runnable::Eval {
                                at,
                                expr: first,
                                out: (slot, 0),
                            },
                        );
                        self.register_pending(s, slot, at, Cont::SeqStep { rest, out })?;
                        Ok(())
                    }
                }
            }
        }
    }

    fn resume(
        &mut self,
        s: &mut EvalSession,
        peer: PeerId,
        cont: Cont,
        input: Vec<Vec<Tree>>,
        mut pre: Option<Precomp>,
    ) -> CoreResult<()> {
        match cont {
            Cont::ApplyFinish { query, skip, out } => {
                let res = match self.take_forest_precomp(peer, &mut pre) {
                    Some(result) => result?,
                    None => query.eval_with_docs(&input[skip..], &self.peers[peer.index()])?,
                };
                self.fill(s, out, res)?;
                Ok(())
            }
            Cont::ScReady {
                provider,
                service,
                forward,
                out,
            } => self.start_service_call(
                s,
                ScCall {
                    caller: peer,
                    provider,
                    service: &service,
                    param_forests: input,
                    forward: &forward,
                },
                out,
            ),
            Cont::SendPeer { dest, out } => {
                self.record_def(3, peer, "send");
                let forest = input.into_iter().next().unwrap_or_default();
                if dest != peer {
                    let payload = self.take_payload_precomp(&mut pre, &forest);
                    self.send_wire(
                        s,
                        peer,
                        dest,
                        AxmlMessage::Data {
                            payload,
                            tag: DataTag::Send,
                        },
                        Intent::None,
                    )?;
                }
                // Definition (3): the send expression itself evaluates
                // to ∅; the data's arrival is the side effect (captured
                // by EvalAt delegation when the destination is the
                // delegating peer).
                self.fill(s, out, Vec::new())?;
                Ok(())
            }
            Cont::SendNodes { addrs, out } => {
                self.record_def(4, peer, "send-nodes");
                let forest = input.into_iter().next().unwrap_or_default();
                let gate = self.deliver_to_nodes(s, peer, &addrs, &forest)?;
                self.register_pending(s, gate, peer, Cont::Discard { out })?;
                Ok(())
            }
            Cont::SendNewDoc {
                peer: dest,
                name,
                out,
            } => {
                self.record_def(3, peer, "send-newdoc");
                let forest = input.into_iter().next().unwrap_or_default();
                if dest != peer {
                    let gate = s.new_slot(1);
                    let payload = self.take_payload_precomp(&mut pre, &forest);
                    self.send_wire(
                        s,
                        peer,
                        dest,
                        AxmlMessage::InstallDoc {
                            name: name.clone(),
                            payload,
                        },
                        Intent::InstallDoc {
                            name,
                            forest,
                            notify: (gate, 0),
                        },
                    )?;
                    self.register_pending(s, gate, peer, Cont::Discard { out })?;
                } else {
                    self.install_new_doc(dest, &name, &forest)?;
                    self.fill(s, out, Vec::new())?;
                }
                Ok(())
            }
            Cont::TreeFinish {
                mut tree,
                grafts,
                out,
            } => {
                for (i, parent) in grafts.iter().enumerate() {
                    if let Some(p) = parent {
                        for r in &input[i] {
                            tree.graft(*p, r, r.root())?;
                        }
                    }
                }
                self.fill(s, out, vec![tree])?;
                Ok(())
            }
            Cont::SeqStep { mut rest, out } => {
                match rest.pop_front() {
                    None => {
                        let last = input.into_iter().next().unwrap_or_default();
                        self.fill(s, out, last)?;
                    }
                    Some(next) => {
                        let slot = s.new_slot(1);
                        self.schedule(
                            s,
                            Runnable::Eval {
                                at: peer,
                                expr: next,
                                out: (slot, 0),
                            },
                        );
                        self.register_pending(s, slot, peer, Cont::SeqStep { rest, out })?;
                    }
                }
                Ok(())
            }
            Cont::ReplyData {
                reply_to,
                tag,
                remote_out,
            } => {
                let forest = input.into_iter().next().unwrap_or_default();
                if reply_to != peer {
                    let payload = self.take_payload_precomp(&mut pre, &forest);
                    self.send_wire(
                        s,
                        peer,
                        reply_to,
                        AxmlMessage::Data { payload, tag },
                        Intent::Reply {
                            forest,
                            out: remote_out,
                        },
                    )?;
                } else {
                    self.fill(s, remote_out, forest)?;
                }
                Ok(())
            }
            Cont::Discard { out } => {
                self.fill(s, out, Vec::new())?;
                Ok(())
            }
        }
    }

    /// Definition (9) for `d@any`, with optional replica failover: pick
    /// a replica, try to reach it, and — when failover is enabled — on
    /// an unreachable provider (down link even after retries, retry
    /// budget exhausted) exclude it and re-pick among the remaining
    /// *live* replicas. With failover disabled this is the plain
    /// single-pick behavior.
    fn fetch_doc_any(
        &mut self,
        s: &mut EvalSession,
        at: PeerId,
        name: DocName,
        out: Out,
    ) -> CoreResult<()> {
        let mut excluded: Vec<PeerId> = Vec::new();
        let mut last_err: Option<CoreError> = None;
        loop {
            self.record_def(9, at, "pickDoc");
            let policy = self.pick_policy;
            // The first pick is blind (a peer only discovers a dead
            // replica by timing out on it); re-picks after a failover
            // exclude the dead and filter to currently-live members.
            let picked = if excluded.is_empty() {
                self.catalog.pick_doc(policy, at, &name, &*self.net)
            } else {
                self.catalog
                    .pick_doc_excluding(policy, at, &name, &*self.net, &excluded)
            };
            let (home, concrete) = match picked {
                Ok(pick) => pick,
                // Every replica excluded or dead: surface why we got
                // here, not the bare empty-class error.
                Err(e) => return Err(last_err.unwrap_or(e)),
            };
            if home == at {
                self.record_def(1, at, "doc");
                let tree = self.peers[at.index()].doc(&concrete, at)?.clone();
                self.fill(s, out, vec![tree])?;
                return Ok(());
            }
            let attempt = self.fetch_remote(
                s,
                at,
                home,
                Expr::Doc {
                    name: concrete,
                    at: PeerRef::At(home),
                },
                out,
            );
            match attempt {
                Ok(()) => return Ok(()),
                Err(e) if self.failover && unreachable_provider(&e) => {
                    excluded.push(home);
                    self.note_failover(at, name.as_str(), home);
                    last_err = Some(e);
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Count and trace one failover decision: `class@any` at `peer`
    /// abandons the unreachable replica `dead`.
    fn note_failover(&mut self, peer: PeerId, class: &str, dead: PeerId) {
        self.obs.metrics.failovers += 1;
        let now = self.net.now_ms();
        let class = class.to_string();
        self.obs.emit(|| TraceEvent::Failover {
            peer,
            class,
            dead,
            at_ms: now,
        });
    }

    /// Definition (5): `eval@at(x@loc)` for remote `x` — ship a request
    /// that *names* the datum (a literal `t@loc` is identified by
    /// reference, as the paper's `n@p` identifiers would, so fetching a
    /// tree never ships the tree's own bytes in the request direction);
    /// the owner evaluates and ships the result back.
    fn fetch_remote(
        &mut self,
        s: &mut EvalSession,
        at: PeerId,
        loc: PeerId,
        expr: Expr,
        out: Out,
    ) -> CoreResult<()> {
        self.record_def(5, at, "fetch");
        let request_xml = match &expr {
            Expr::Tree { tree, .. } => format!(
                r#"<fetch kind="tree" at="p{}" ref="{:016x}"/>"#,
                loc.0,
                axml_xml::equiv::canonical_hash(tree, tree.root())
            ),
            other => other.to_xml().serialize(),
        };
        let mut local = expr;
        relocate(&mut local, loc);
        self.send_wire(
            s,
            at,
            loc,
            AxmlMessage::Request {
                expr_xml: request_xml,
            },
            Intent::EvalAndReply {
                expr: local,
                reply_to: at,
                tag: DataTag::Fetch,
                out,
            },
        )
    }

    /// Definition (1) + (6): copy a tree, activating its immediate `sc`
    /// elements concurrently. Results with an explicit forward list
    /// leave side effects elsewhere; calls without one accumulate as
    /// siblings of the `sc` node (§2.2 step 3), with the `sc` kept in
    /// place (AXML semantics — the call may stream more later).
    fn materialize_tree_tasks(
        &mut self,
        s: &mut EvalSession,
        at: PeerId,
        tree: &Tree,
        out: Out,
    ) -> CoreResult<()> {
        let copy = tree.clone();
        let mut active = Vec::new();
        for sc_id in ScNode::find_all(&copy, copy.root()) {
            let sc = ScNode::parse(&copy, sc_id)?;
            if sc.mode != ActivationMode::Immediate {
                continue;
            }
            let parent = if sc.forward.is_empty() {
                Some(
                    copy.parent(sc_id)
                        .ok_or_else(|| CoreError::Malformed("sc at document root".into()))?,
                )
            } else {
                None
            };
            active.push((sc, parent));
        }
        if active.is_empty() {
            self.fill(s, out, vec![copy])?;
            return Ok(());
        }
        let slot = s.new_slot(active.len());
        let mut grafts = Vec::with_capacity(active.len());
        for (i, (sc, parent)) in active.into_iter().enumerate() {
            grafts.push(parent);
            let params: Vec<Vec<Tree>> = sc.params.iter().map(|p| vec![p.clone()]).collect();
            self.start_service_call(
                s,
                ScCall {
                    caller: at,
                    provider: sc.provider,
                    service: &sc.service,
                    param_forests: params,
                    forward: &sc.forward,
                },
                (slot, i),
            )?;
        }
        self.register_pending(
            s,
            slot,
            at,
            Cont::TreeFinish {
                tree: copy,
                grafts,
                out,
            },
        )?;
        Ok(())
    }

    /// §2.2's activation steps 1–3 / definition (6), as engine tasks:
    /// resolve the provider, ship the parameters, and let the `Invoke`
    /// intent run the service on arrival.
    fn start_service_call(
        &mut self,
        s: &mut EvalSession,
        call: ScCall<'_>,
        out: Out,
    ) -> CoreResult<()> {
        let ScCall {
            caller,
            provider,
            service,
            param_forests,
            forward,
        } = call;
        let class = match provider {
            ScProvider::Peer(p) => {
                let concrete = service.clone();
                return self.dispatch_service_call(
                    s,
                    caller,
                    p,
                    concrete,
                    param_forests,
                    forward,
                    out,
                );
            }
            ScProvider::Any => service,
        };
        // Definition (9) + failover: pick, dispatch, and on an
        // unreachable provider exclude it and re-pick among the live
        // members (params are re-shipped to the new provider).
        let mut excluded: Vec<PeerId> = Vec::new();
        let mut last_err: Option<CoreError> = None;
        loop {
            self.record_def(9, caller, "pickService");
            let policy = self.pick_policy;
            // First pick blind, re-picks exclude the dead and filter to
            // live members — see `fetch_doc_any`.
            let picked = if excluded.is_empty() {
                self.catalog.pick_service(policy, caller, class, &*self.net)
            } else {
                self.catalog
                    .pick_service_excluding(policy, caller, class, &*self.net, &excluded)
            };
            let (prov, concrete) = match picked {
                Ok(pick) => pick,
                Err(e) => return Err(last_err.unwrap_or(e)),
            };
            let attempt = self.dispatch_service_call(
                s,
                caller,
                prov,
                concrete,
                param_forests.clone(),
                forward,
                out,
            );
            match attempt {
                Ok(()) => return Ok(()),
                Err(e) if self.failover && unreachable_provider(&e) => {
                    excluded.push(prov);
                    self.note_failover(caller, class.as_str(), prov);
                    last_err = Some(e);
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// The resolved-provider half of definition (6): charge the call,
    /// ship the parameters (or run locally when the provider is the
    /// caller).
    #[allow(clippy::too_many_arguments)]
    fn dispatch_service_call(
        &mut self,
        s: &mut EvalSession,
        caller: PeerId,
        prov: PeerId,
        concrete: ServiceName,
        param_forests: Vec<Vec<Tree>>,
        forward: &[NodeAddr],
        out: Out,
    ) -> CoreResult<()> {
        self.check_peer(prov)?;
        self.record_def(6, caller, "sc");
        self.obs.metrics.service_calls += 1;
        let call_id = self.fresh_call_id();
        let now = self.now_ms();
        self.obs.emit(|| TraceEvent::ServiceCall {
            caller,
            provider: prov,
            service: concrete.as_str().to_string(),
            call_id,
            at_ms: now,
        });
        // Step 1: params to the provider (the service runs on arrival —
        // a missing service or arity clash is still charged the invoke,
        // exactly as a real provider would reject after receiving).
        if prov != caller {
            self.send_wire(
                s,
                caller,
                prov,
                AxmlMessage::Invoke {
                    service: concrete.clone(),
                    params: param_forests
                        .iter()
                        .map(|f| Self::serialize_forest(f))
                        .collect(),
                    forward: forward.to_vec(),
                    call_id,
                },
                Intent::Invoke {
                    caller,
                    service: concrete,
                    params: param_forests,
                    forward: forward.to_vec(),
                    call_id,
                    out,
                },
            )
        } else {
            self.run_service_at(
                s,
                prov,
                caller,
                &concrete,
                param_forests,
                forward,
                call_id,
                out,
                None,
            )
        }
    }

    /// A valid (same peer, same epoch) precomputed forest, or `None` to
    /// compute inline. Stale precomps are counted and discarded.
    fn take_forest_precomp(
        &mut self,
        peer: PeerId,
        pre: &mut Option<Precomp>,
    ) -> Option<CoreResult<Vec<Tree>>> {
        match pre.take() {
            Some(Precomp::Forest {
                peer: p,
                epoch,
                result,
            }) if p == peer && epoch == self.state_epochs[peer.index()] => {
                self.par_stats.precomp_used += 1;
                Some(result)
            }
            Some(_) => {
                self.par_stats.invalidated += 1;
                None
            }
            None => None,
        }
    }

    /// A precomputed wire payload (pure in the forest, so never stale),
    /// or serialize inline.
    fn take_payload_precomp(&mut self, pre: &mut Option<Precomp>, forest: &[Tree]) -> String {
        match pre.take() {
            Some(Precomp::Payload(p)) => {
                self.par_stats.precomp_used += 1;
                p
            }
            other => {
                if other.is_some() {
                    self.par_stats.invalidated += 1;
                }
                Self::serialize_forest(forest)
            }
        }
    }

    /// The provider-side evaluation of one service call: results plus
    /// (when the call must be answered over the wire) the serialized
    /// response payload. Resolution order: a valid precomputed result
    /// from the parallel driver's workers, then — in collapsing
    /// sessions — the epoch-guarded session cache, then inline
    /// evaluation. All three produce bit-identical values: service
    /// bodies are pure in (parameters, provider state @ epoch).
    fn service_results(
        &mut self,
        s: &mut EvalSession,
        prov: PeerId,
        service: &ServiceName,
        params: &[Vec<Tree>],
        need_payload: bool,
    ) -> CoreResult<(Vec<Tree>, Option<String>)> {
        let epoch = self.state_epochs[prov.index()];
        let key = s
            .collapse
            .then(|| (prov, service.clone(), crate::driver::params_key(params)));
        if let Some(k) = &key {
            if let Some(hit) = s.svc_cache.get_mut(k) {
                if hit.epoch == epoch {
                    self.par_stats.cache_hits += 1;
                    if need_payload && hit.payload.is_none() {
                        hit.payload = Some(Self::serialize_forest(&hit.results));
                    }
                    return Ok((hit.results.clone(), hit.payload.clone()));
                }
            }
        }
        let svc = self.peers[prov.index()].service(service, prov)?;
        if svc.arity() != params.len() {
            return Err(CoreError::Query(axml_query::QueryError::ArityMismatch {
                expected: svc.arity(),
                got: params.len(),
            }));
        }
        let query = svc.query.clone();
        let results = query.eval_with_docs(params, &self.peers[prov.index()])?;
        let payload = need_payload.then(|| Self::serialize_forest(&results));
        if let Some(k) = key {
            s.svc_cache.insert(
                k,
                CachedCall {
                    epoch,
                    results: results.clone(),
                    payload: payload.clone(),
                },
            );
        }
        Ok((results, payload))
    }

    /// §2.2 steps 2–3 at the provider: apply the implementation query,
    /// then ship results back (or to the forward list).
    #[allow(clippy::too_many_arguments)]
    fn run_service_at(
        &mut self,
        s: &mut EvalSession,
        prov: PeerId,
        caller: PeerId,
        service: &ServiceName,
        params: Vec<Vec<Tree>>,
        forward: &[NodeAddr],
        call_id: u64,
        out: Out,
        mut pre: Option<Precomp>,
    ) -> CoreResult<()> {
        let need_payload = forward.is_empty() && prov != caller;
        let epoch = self.state_epochs[prov.index()];
        let precomputed = match pre.take() {
            Some(Precomp::Service {
                peer,
                epoch: e,
                result,
            }) if peer == prov && e == epoch => {
                self.par_stats.precomp_used += 1;
                let value = result?;
                // Feed the session cache so later identical calls
                // collapse onto this evaluation.
                if s.collapse {
                    s.svc_cache.insert(
                        (prov, service.clone(), crate::driver::params_key(&params)),
                        CachedCall {
                            epoch,
                            results: value.0.clone(),
                            payload: value.1.clone(),
                        },
                    );
                }
                Some(value)
            }
            Some(_) => {
                self.par_stats.invalidated += 1;
                None
            }
            None => None,
        };
        let (results, payload) = match precomputed {
            Some(v) => v,
            None => self.service_results(s, prov, service, &params, need_payload)?,
        };
        if forward.is_empty() {
            if prov != caller {
                let payload = payload.unwrap_or_else(|| Self::serialize_forest(&results));
                self.send_wire(
                    s,
                    prov,
                    caller,
                    AxmlMessage::Response { call_id, payload },
                    Intent::Reply {
                        forest: results,
                        out,
                    },
                )
            } else {
                self.fill(s, out, results)?;
                Ok(())
            }
        } else {
            let gate = self.deliver_to_nodes(s, prov, forward, &results)?;
            self.register_pending(s, gate, prov, Cont::Discard { out })?;
            Ok(())
        }
    }

    /// The engine form of [`AxmlSystem::call_service`]'s old synchronous
    /// contract: run one service call in its own session and block until
    /// the result materializes (used by lazy/type-driven activation).
    pub(crate) fn call_service(
        &mut self,
        caller: PeerId,
        provider: ScProvider,
        service: &ServiceName,
        param_forests: Vec<Vec<Tree>>,
        forward: &[NodeAddr],
    ) -> CoreResult<Vec<Tree>> {
        let mut s = self.new_session();
        let slot = s.new_slot(1);
        match self.start_service_call(
            &mut s,
            ScCall {
                caller,
                provider,
                service,
                param_forests,
                forward,
            },
            (slot, 0),
        ) {
            Ok(()) => {
                self.run_session(&mut s)?;
                Ok(s.take(slot)?)
            }
            Err(e) => {
                self.net.clear_in_flight();
                Err(e)
            }
        }
    }

    /// Definition (4): one concurrent delivery per `n@p` address.
    /// Returns the gate slot that becomes ready once every graft landed.
    pub(crate) fn deliver_to_nodes(
        &mut self,
        s: &mut EvalSession,
        from: PeerId,
        addrs: &[NodeAddr],
        forest: &[Tree],
    ) -> CoreResult<usize> {
        let gate = s.new_slot(addrs.len());
        for (i, addr) in addrs.iter().enumerate() {
            self.check_peer(addr.peer)?;
            if addr.peer != from {
                self.send_wire(
                    s,
                    from,
                    addr.peer,
                    AxmlMessage::Data {
                        payload: Self::serialize_forest(forest),
                        tag: DataTag::Forward,
                    },
                    Intent::Graft {
                        addr: addr.clone(),
                        forest: forest.to_vec(),
                        notify: Some((gate, i)),
                    },
                )?;
            } else {
                self.graft_at(addr, forest)?;
                self.fill(s, (gate, i), Vec::new())?;
            }
        }
        Ok(gate)
    }

    /// Graft a forest under the addressed node.
    pub(crate) fn graft_at(&mut self, addr: &NodeAddr, forest: &[Tree]) -> CoreResult<()> {
        let peer = &mut self.peers[addr.peer.index()];
        let doc = peer
            .docs
            .get_mut(&addr.doc)
            .ok_or_else(|| CoreError::NoSuchDoc {
                doc: addr.doc.clone(),
                at: addr.peer,
            })?;
        let tree = doc.tree_mut();
        if !tree.contains(addr.node) {
            return Err(CoreError::Xml(axml_xml::XmlError::InvalidNode {
                index: addr.node.index() as u32,
            }));
        }
        for t in forest {
            tree.graft(addr.node, t, t.root())?;
        }
        self.touch_peer(addr.peer);
        Ok(())
    }

    fn install_new_doc(&mut self, at: PeerId, name: &DocName, forest: &[Tree]) -> CoreResult<()> {
        let mut doc = Tree::new(name.as_str());
        let root = doc.root();
        for t in forest {
            doc.graft(root, t, t.root()).expect("fresh root");
        }
        self.touch_peer(at);
        self.peers[at.index()].install_doc(Document::new(name.clone(), doc))
    }

    /// Count one firing of paper definition `def` and, when a trace sink
    /// is attached, stream the matching [`TraceEvent::Definition`].
    pub(crate) fn record_def(&mut self, def: u8, peer: PeerId, expr: &'static str) {
        self.obs.metrics.record_def(def);
        let at_ms = self.net.now_ms();
        self.obs.emit(|| TraceEvent::Definition {
            def,
            peer,
            expr: expr.into(),
            at_ms,
        });
    }
}

/// Re-pin the location of the outermost data reference to `loc` (used
/// when the owner evaluates a fetched expression locally).
/// Does this error mean "the picked provider cannot be reached" — the
/// condition replica failover reacts to? Structural errors (unknown
/// peer, missing doc, malformed expression) must *not* trigger a
/// re-pick: a different replica would fail the same way or mask a bug.
fn unreachable_provider(e: &CoreError) -> bool {
    matches!(
        e,
        CoreError::Engine(EngineError::Undeliverable { .. } | EngineError::Exhausted { .. })
    )
}

fn relocate(expr: &mut Expr, loc: PeerId) {
    match expr {
        Expr::Tree { at, .. } => *at = loc,
        Expr::Doc { at, .. } => *at = PeerRef::At(loc),
        _ => {}
    }
}
