//! Lazy and type-driven service-call activation — the two alternative
//! activation policies §2.2 cites:
//!
//! * *"a call may be activated only when the call result is needed to
//!   evaluate some query over the enclosing document \[2\]"* —
//!   [`AxmlSystem::query_document`]: given a query over a document with
//!   `mode="lazy"` calls, activate only the calls whose results the query
//!   may need (decided from the query's label footprint against each
//!   service's output type), then evaluate;
//! * *"or in order to turn d0's XML type in some other desired type
//!   \[6\]"* — [`AxmlSystem::activate_to_type`]: activate lazy calls one
//!   by one until the document validates against a target type.
//!
//! Both are conservative approximations of the cited papers' full
//! machinery (lazy AXML uses query rewriting; \[6\] uses regular
//! rewritings over types), preserving their observable contract: no
//! irrelevant call fires, and the result is correct for the
//! query/type at hand.

use crate::error::{CoreError, CoreResult};
use crate::sc::{ActivationMode, ScNode, ScProvider};
use crate::system::AxmlSystem;
use axml_query::plan::{Plan, PlanTest};
use axml_query::Query;
use axml_types::{Schema, TypeName};
use axml_xml::ids::{DocName, PeerId};
use axml_xml::label::Label;
use axml_xml::tree::Tree;
use std::collections::HashSet;

/// The set of element labels a query navigates through or constructs
/// from — its *label footprint*. A service whose output cannot contain
/// any of these labels cannot affect the query's answer.
pub fn query_label_footprint(q: &Query) -> HashSet<Label> {
    let mut labels = HashSet::new();
    fn from_plan(plan: &Plan, labels: &mut HashSet<Label>) {
        let mut record = |p: &axml_query::plan::PathPlan| {
            for s in &p.steps {
                if let PlanTest::Label(l) = &s.test {
                    labels.insert(*l);
                }
            }
        };
        plan.ops.for_each_path(&mut record);
        let mut probe = plan.clone();
        axml_query::rewrite::map_paths(&mut probe, &mut |p| record(p));
    }
    match q.composition() {
        Some((outer, inners)) => {
            from_plan(outer.plan().expect("leaf outer"), &mut labels);
            for i in inners {
                labels.extend(query_label_footprint(i));
            }
        }
        None => {
            if let Some(plan) = q.plan() {
                from_plan(plan, &mut labels);
            }
        }
    }
    labels
}

/// Graft `results` under `parent`, skipping trees already present among
/// the existing children (canonical multiset delta) — repeated
/// activations must not duplicate materialized answers.
fn graft_delta(
    tree: &mut Tree,
    parent: axml_xml::tree::NodeId,
    results: &[Tree],
) -> CoreResult<usize> {
    let mut present: std::collections::HashMap<axml_xml::equiv::Canon, usize> =
        std::collections::HashMap::new();
    for &c in tree.children(parent) {
        *present
            .entry(axml_xml::equiv::canonicalize(tree, c))
            .or_insert(0) += 1;
    }
    let mut added = 0;
    for rtree in results {
        let canon = axml_xml::equiv::canonicalize(rtree, rtree.root());
        match present.get_mut(&canon) {
            Some(n) if *n > 0 => *n -= 1,
            _ => {
                tree.graft(parent, rtree, rtree.root())?;
                added += 1;
            }
        }
    }
    Ok(added)
}

impl AxmlSystem {
    /// May the results of `sc` be relevant to a query with the given
    /// label footprint? Conservative: only a *declared* output root label
    /// that is absent from the footprint proves irrelevance; wildcards
    /// (or `//text()`-only queries) count as relevant.
    fn call_maybe_relevant(&self, sc: &ScNode, footprint: &HashSet<Label>, wildcard: bool) -> bool {
        if wildcard {
            return true;
        }
        let provider = match sc.provider {
            ScProvider::Peer(p) => p,
            // Resolution could pick any replica; stay conservative.
            ScProvider::Any => return true,
        };
        let Ok(svc) = self.peer(provider).service(&sc.service, provider) else {
            return true; // unknown service: the activation itself will error
        };
        match &svc.signature.output.root_label {
            Some(l) => footprint.contains(l),
            None => true,
        }
    }

    /// Lazy query evaluation (the `[2]` policy): activate exactly the
    /// lazy calls of `doc@at` that may contribute to `query` (arity 1,
    /// over the document), then evaluate the query over the updated
    /// document. Returns `(results, activated_call_count)`.
    pub fn query_document(
        &mut self,
        at: PeerId,
        doc: &DocName,
        query: &Query,
    ) -> CoreResult<(Vec<Tree>, usize)> {
        self.check_peer(at)?;
        if query.arity() != 1 {
            return Err(CoreError::Unsupported(
                "query_document expects a unary query over the document".into(),
            ));
        }
        let footprint = query_label_footprint(query);
        // Does the query use wildcard/descendant-text steps that could
        // match anything?
        let wildcard = {
            let mut found = false;
            let mut check_plan = |plan: &Plan| {
                let mut probe = plan.clone();
                axml_query::rewrite::map_paths(&mut probe, &mut |p| {
                    for s in &p.steps {
                        if matches!(s.test, PlanTest::Wildcard) {
                            found = true;
                        }
                    }
                });
            };
            match query.composition() {
                Some((outer, inners)) => {
                    check_plan(outer.plan().expect("leaf outer"));
                    for i in inners {
                        if let Some(p) = i.plan() {
                            check_plan(p);
                        }
                    }
                }
                None => {
                    if let Some(p) = query.plan() {
                        check_plan(p);
                    }
                }
            }
            found
        };

        let tree = self.peer(at).doc(doc, at)?.clone();
        let mut activated = 0usize;
        for sc_id in ScNode::find_all(&tree, tree.root()) {
            let sc = ScNode::parse(&tree, sc_id)?;
            if sc.mode != ActivationMode::Lazy {
                continue;
            }
            if !self.call_maybe_relevant(&sc, &footprint, wildcard) {
                continue;
            }
            // Activate one-shot: results accumulate as siblings of the sc
            // (or at its forward targets).
            let params: Vec<Vec<Tree>> = sc.params.iter().map(|p| vec![p.clone()]).collect();
            let results = self.call_service(at, sc.provider, &sc.service, params, &sc.forward)?;
            activated += 1;
            if sc.forward.is_empty() {
                let parent = {
                    let stored = self.peer(at).doc(doc, at)?;
                    stored
                        .parent(sc_id)
                        .ok_or_else(|| CoreError::Malformed("lazy sc at document root".into()))?
                };
                let state = self.peer_mut(at);
                let d = state.docs.require_mut(doc)?;
                graft_delta(d.tree_mut(), parent, &results)?;
            }
        }
        let updated = self.peer(at).doc(doc, at)?.clone();
        let out = query.eval_with_docs(&[vec![updated]], self.peer(at))?;
        Ok((out, activated))
    }

    /// Type-driven activation (the `[6]` policy): activate lazy calls of
    /// `doc@at`, in document order, until the document validates against
    /// `ty` under `schema`. Returns the number of calls activated, or the
    /// final validation error if the type is unreachable.
    pub fn activate_to_type(
        &mut self,
        at: PeerId,
        doc: &DocName,
        schema: &Schema,
        ty: &TypeName,
    ) -> CoreResult<usize> {
        self.check_peer(at)?;
        let mut activated = 0usize;
        loop {
            let tree = self.peer(at).doc(doc, at)?.clone();
            if schema.validate(&tree, ty.clone()).is_ok() {
                return Ok(activated);
            }
            // Find the first unactivated lazy call (document order).
            let next = ScNode::find_all(&tree, tree.root())
                .into_iter()
                .map(|id| (id, ScNode::parse(&tree, id)))
                .find_map(|(id, sc)| match sc {
                    Ok(sc) if sc.mode == ActivationMode::Lazy => Some((id, sc)),
                    _ => None,
                });
            let Some((sc_id, sc)) = next else {
                // No more calls to try: report the real validation error.
                schema.validate(&tree, ty.clone())?;
                unreachable!("validate just failed above");
            };
            let params: Vec<Vec<Tree>> = sc.params.iter().map(|p| vec![p.clone()]).collect();
            let results = self.call_service(at, sc.provider, &sc.service, params, &sc.forward)?;
            activated += 1;
            // Replace the lazy sc with its results (the activated call has
            // done its type-level job; keeping the sc would keep the
            // document invalid under closed content models).
            let state = self.peer_mut(at);
            let d = state.docs.require_mut(doc)?;
            let parent = d
                .tree()
                .parent(sc_id)
                .ok_or_else(|| CoreError::Malformed("lazy sc at document root".into()))?;
            d.tree_mut().detach(sc_id)?;
            graft_delta(d.tree_mut(), parent, &results)?;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::Service;
    use axml_net::link::LinkCost;
    use axml_types::{Content, Signature, TreeType};

    /// A document with two lazy calls: one feeding <news>, one <stock>.
    fn build() -> (AxmlSystem, PeerId, PeerId) {
        let mut sys = AxmlSystem::new();
        let client = sys.add_peer("client");
        let server = sys.add_peer("server");
        sys.net_mut().set_link(client, server, LinkCost::wan());
        sys.install_doc(
            server,
            "src",
            Tree::parse(
                r#"<src><item kind="news">headline</item><item kind="stock">42</item></src>"#,
            )
            .unwrap(),
        )
        .unwrap();
        let news_q = Query::parse(
            "news",
            r#"for $i in doc("src")/item where $i/@kind = "news" return <news>{$i/text()}</news>"#,
        )
        .unwrap();
        sys.register_service(
            server,
            Service::declarative("news-svc", news_q).with_signature(Signature::new(
                vec![],
                TreeType::new("news", TypeName::any()),
            )),
        )
        .unwrap();
        let stock_q = Query::parse(
            "stock",
            r#"for $i in doc("src")/item where $i/@kind = "stock" return <stock>{$i/text()}</stock>"#,
        )
        .unwrap();
        sys.register_service(
            server,
            Service::declarative("stock-svc", stock_q).with_signature(Signature::new(
                vec![],
                TreeType::new("stock", TypeName::any()),
            )),
        )
        .unwrap();
        sys.install_doc(
            client,
            "digest",
            Tree::parse(
                r#"<digest>
                     <sc mode="lazy"><peer>p1</peer><service>news-svc</service></sc>
                     <sc mode="lazy"><peer>p1</peer><service>stock-svc</service></sc>
                   </digest>"#,
            )
            .unwrap(),
        )
        .unwrap();
        (sys, client, server)
    }

    #[test]
    fn lazy_activation_fires_only_relevant_calls() {
        let (mut sys, client, server) = build();
        let q = Query::parse("want-news", "$0//news").unwrap();
        let (out, activated) = sys.query_document(client, &"digest".into(), &q).unwrap();
        assert_eq!(activated, 1, "only the news call fires");
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].serialize(), "<news>headline</news>");
        // traffic: exactly one invoke + one response
        assert_eq!(sys.stats().link(client, server).messages, 1);
        assert_eq!(sys.stats().link(server, client).messages, 1);
        // the stock sc is still lazy/unactivated in the stored document
        let doc = sys.peer(client).docs.get(&"digest".into()).unwrap().tree();
        assert!(!doc.serialize().contains("<stock>"));
    }

    #[test]
    fn wildcard_queries_activate_everything() {
        let (mut sys, client, _server) = build();
        let q = Query::parse("all", "$0/*").unwrap();
        let (_, activated) = sys.query_document(client, &"digest".into(), &q).unwrap();
        assert_eq!(activated, 2);
    }

    #[test]
    fn repeated_queries_do_not_duplicate_results() {
        let (mut sys, client, _server) = build();
        let q = Query::parse("want-news", "$0//news").unwrap();
        let (out1, _) = sys.query_document(client, &"digest".into(), &q).unwrap();
        let (out2, _) = sys.query_document(client, &"digest".into(), &q).unwrap();
        assert_eq!(out1.len(), out2.len(), "idempotent materialization");
        let doc = sys.peer(client).docs.get(&"digest".into()).unwrap().tree();
        assert_eq!(
            doc.descendants_labeled(doc.root(), "news").count(),
            1,
            "no duplicates after re-running the query"
        );
        assert!(!doc.serialize().contains("<stock>"));
    }

    #[test]
    fn footprint_computation() {
        let q = Query::parse(
            "q",
            r#"for $x in $0//news/wire where $x/tag = "db" return <out>{$x}</out>"#,
        )
        .unwrap();
        let fp = query_label_footprint(&q);
        assert!(fp.contains(&Label::new("news")));
        assert!(fp.contains(&Label::new("wire")));
        assert!(fp.contains(&Label::new("tag")));
        assert!(!fp.contains(&Label::new("stock")));
    }

    #[test]
    fn arity_guard() {
        let (mut sys, client, _server) = build();
        let q = Query::parse("binary", "for $a in $0 for $b in $1 return <x/>").unwrap();
        assert!(matches!(
            sys.query_document(client, &"digest".into(), &q),
            Err(CoreError::Unsupported(_))
        ));
    }

    #[test]
    fn type_driven_activation_reaches_target_type() {
        let (mut sys, client, _server) = build();
        let schema = Schema::builder()
            .ty(
                "DigestT",
                Content::seq([
                    Content::plus(Content::elem("news", "AnyT")),
                    Content::star(Content::elem("stock", "AnyT")),
                ]),
            )
            .ty("AnyT", Content::any())
            .build()
            .unwrap();
        // Initially invalid: the digest holds only sc elements.
        let before = sys
            .peer(client)
            .docs
            .get(&"digest".into())
            .unwrap()
            .tree()
            .clone();
        assert!(schema.validate(&before, "DigestT").is_err());
        let activated = sys
            .activate_to_type(client, &"digest".into(), &schema, &"DigestT".into())
            .unwrap();
        assert!(activated >= 1);
        let after = sys.peer(client).docs.get(&"digest".into()).unwrap().tree();
        schema.validate(after, "DigestT").unwrap();
    }

    #[test]
    fn type_driven_activation_stops_early_when_already_valid() {
        let (mut sys, client, _server) = build();
        let anything = Schema::builder().ty("T", Content::any()).build().unwrap();
        let activated = sys
            .activate_to_type(client, &"digest".into(), &anything, &"T".into())
            .unwrap();
        assert_eq!(activated, 0, "already valid: nothing fires");
        assert_eq!(sys.stats().total_messages(), 0);
    }

    #[test]
    fn type_driven_activation_reports_unreachable_types() {
        let (mut sys, client, _server) = build();
        let impossible = Schema::builder()
            .ty("T", Content::elem("never", "T2"))
            .ty("T2", Content::Empty)
            .build()
            .unwrap();
        let err = sys
            .activate_to_type(client, &"digest".into(), &impossible, &"T".into())
            .unwrap_err();
        assert!(matches!(err, CoreError::Type(_)), "{err}");
    }
}
