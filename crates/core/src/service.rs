//! Declarative Web services — §2.1–2.2.
//!
//! A service `s@p` is a named, typed operation provided by a peer. The
//! services of interest here are *declarative*: implemented by a visible
//! [`Query`], which is what makes the optimizations of §3 possible
//! (*"the statements implementing such services are visible to other
//! peers, enabling many optimizations"*). All services are continuous in
//! the paper's model (§2.2 last paragraph); the [`Service::continuous`]
//! flag records whether a deployment actually streams.

use axml_query::Query;
use axml_types::Signature;
use axml_xml::ids::ServiceName;
use std::fmt;

/// A service registered on a peer.
#[derive(Debug, Clone)]
pub struct Service {
    /// The service name `s ∈ S`.
    pub name: ServiceName,
    /// The declarative implementation. Its arity is the service's input
    /// arity `n`.
    pub query: Query,
    /// The `(τin, τout)` signature.
    pub signature: Signature,
    /// Does the service keep streaming responses (continuous service)?
    pub continuous: bool,
}

impl Service {
    /// A continuous declarative service with a wildcard signature.
    pub fn declarative(name: impl Into<ServiceName>, query: Query) -> Self {
        let arity = query.arity();
        Service {
            name: name.into(),
            query,
            signature: Signature::any(arity),
            continuous: true,
        }
    }

    /// Attach a precise signature.
    pub fn with_signature(mut self, signature: Signature) -> Self {
        self.signature = signature;
        self
    }

    /// Mark as one-shot (non-continuous).
    pub fn one_shot(mut self) -> Self {
        self.continuous = false;
        self
    }

    /// The input arity `n` of the service.
    pub fn arity(&self) -> usize {
        self.query.arity()
    }
}

impl fmt::Display for Service {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}{}: {}",
            self.name,
            if self.continuous { "~" } else { "" },
            self.signature
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use axml_types::TreeType;

    #[test]
    fn construction_and_arity() {
        let q = Query::parse("impl", "for $x in $0//pkg return {$x}").unwrap();
        let s = Service::declarative("catalog-scan", q);
        assert_eq!(s.arity(), 1);
        assert!(s.continuous);
        assert_eq!(s.signature.arity(), 1);
        assert_eq!(s.name.as_str(), "catalog-scan");
    }

    #[test]
    fn builders() {
        let q = Query::parse("impl", "for $x in $0 return {$x}").unwrap();
        let s = Service::declarative("s", q)
            .one_shot()
            .with_signature(Signature::new(
                vec![TreeType::new("catalog", "xs:anyType")],
                TreeType::any(),
            ));
        assert!(!s.continuous);
        assert_eq!(
            s.signature.inputs[0].root_label.as_ref().unwrap().as_str(),
            "catalog"
        );
        assert!(s.to_string().contains("s:"), "{s}");
    }

    #[test]
    fn display_marks_continuous() {
        let q = Query::parse("impl", "$0//x").unwrap();
        let s = Service::declarative("feed", q);
        assert!(s.to_string().contains("feed~"));
    }
}
