//! Wire messages exchanged between AXML peers.
//!
//! Each variant corresponds to one kind of interaction in the paper's
//! evaluation semantics; the [`Payload`] impl reports exactly the bytes the
//! cost model charges (XML payloads travel serialized; headers are modelled
//! by the links' per-message overhead).

use axml_net::Payload;
use axml_obs::{DataTag, MessageKind};
use axml_xml::ids::{DocName, NodeAddr, ServiceName};

/// A message between peers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AxmlMessage {
    /// A serialized expression shipped for remote evaluation
    /// (definitions (5)/(7), rules (14)–(16)).
    Request {
        /// The serialized expression tree.
        expr_xml: String,
    },
    /// Data trees in transit (definitions (3)–(5)).
    Data {
        /// Serialized forest (concatenated tree serializations).
        payload: String,
        /// The exhaustive data refinement ("send", "fetch", …) — which
        /// definition or subsystem produced the transfer.
        tag: DataTag,
    },
    /// A service invocation: the `param_i` children shipped to the
    /// provider (§2.2 step 1).
    Invoke {
        /// Target service.
        service: ServiceName,
        /// Serialized parameter forests, one string per parameter.
        params: Vec<String>,
        /// Forward list (where the provider must send results).
        forward: Vec<NodeAddr>,
        /// Correlation id.
        call_id: u64,
    },
    /// A service response (§2.2 steps 2–3).
    Response {
        /// Correlation id.
        call_id: u64,
        /// Serialized result forest.
        payload: String,
    },
    /// A shipped query definition, deployed as a new service
    /// (definition (8)).
    DeployQuery {
        /// Serialized query (definition included).
        query_xml: String,
        /// Service name to install it under.
        as_service: ServiceName,
    },
    /// A tree installed as a new document (`send(d@p2, t)`).
    InstallDoc {
        /// New document name.
        name: DocName,
        /// Serialized tree.
        payload: String,
    },
}

impl AxmlMessage {
    /// The typed kind for metrics/traces. `Data` messages report their
    /// [`DataTag`] ("send", "fetch", "forward", …) so the per-kind
    /// traffic breakdown distinguishes the definition that produced
    /// them, and a typo in a kind label is a compile error.
    pub fn kind(&self) -> MessageKind {
        match self {
            AxmlMessage::Request { .. } => MessageKind::Request,
            AxmlMessage::Data { tag, .. } => MessageKind::Data(*tag),
            AxmlMessage::Invoke { .. } => MessageKind::Invoke,
            AxmlMessage::Response { .. } => MessageKind::Response,
            AxmlMessage::DeployQuery { .. } => MessageKind::DeployQuery,
            AxmlMessage::InstallDoc { .. } => MessageKind::InstallDoc,
        }
    }
}

impl AxmlMessage {
    /// Deterministic byte encoding for the AXTR wire: a variant tag
    /// followed by length-prefixed (u32 LE) fields. Socket-backed
    /// transports ship exactly these bytes across the process boundary
    /// and verify the endpoint's digest over them, so equal messages
    /// must always encode equally.
    pub fn frame_bytes(&self) -> Vec<u8> {
        fn put_str(out: &mut Vec<u8>, s: &str) {
            out.extend_from_slice(&(s.len() as u32).to_le_bytes());
            out.extend_from_slice(s.as_bytes());
        }
        let mut out = Vec::new();
        match self {
            AxmlMessage::Request { expr_xml } => {
                out.push(1);
                put_str(&mut out, expr_xml);
            }
            AxmlMessage::Data { payload, tag } => {
                out.push(2);
                put_str(&mut out, tag.as_str());
                put_str(&mut out, payload);
            }
            AxmlMessage::Invoke {
                service,
                params,
                forward,
                call_id,
            } => {
                out.push(3);
                put_str(&mut out, service.as_str());
                out.extend_from_slice(&(params.len() as u32).to_le_bytes());
                for p in params {
                    put_str(&mut out, p);
                }
                out.extend_from_slice(&(forward.len() as u32).to_le_bytes());
                for addr in forward {
                    out.extend_from_slice(&addr.peer.0.to_le_bytes());
                    put_str(&mut out, addr.doc.as_str());
                    out.extend_from_slice(&(addr.node.index() as u32).to_le_bytes());
                }
                out.extend_from_slice(&call_id.to_le_bytes());
            }
            AxmlMessage::Response { call_id, payload } => {
                out.push(4);
                out.extend_from_slice(&call_id.to_le_bytes());
                put_str(&mut out, payload);
            }
            AxmlMessage::DeployQuery {
                query_xml,
                as_service,
            } => {
                out.push(5);
                put_str(&mut out, as_service.as_str());
                put_str(&mut out, query_xml);
            }
            AxmlMessage::InstallDoc { name, payload } => {
                out.push(6);
                put_str(&mut out, name.as_str());
                put_str(&mut out, payload);
            }
        }
        out
    }
}

impl Payload for AxmlMessage {
    fn wire_size(&self) -> usize {
        match self {
            AxmlMessage::Request { expr_xml } => expr_xml.len(),
            AxmlMessage::Data { payload, .. } => payload.len(),
            AxmlMessage::Invoke {
                service,
                params,
                forward,
                ..
            } => {
                service.len()
                    + params.iter().map(String::len).sum::<usize>()
                    + forward.len() * 24
                    + 8
            }
            AxmlMessage::Response { payload, .. } => payload.len() + 8,
            AxmlMessage::DeployQuery {
                query_xml,
                as_service,
            } => query_xml.len() + as_service.len(),
            AxmlMessage::InstallDoc { name, payload } => name.len() + payload.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use axml_xml::ids::PeerId;
    use axml_xml::tree::NodeId;

    #[test]
    fn sizes_reflect_payloads() {
        assert_eq!(
            AxmlMessage::Request {
                expr_xml: "<doc/>".into()
            }
            .wire_size(),
            6
        );
        assert_eq!(
            AxmlMessage::Data {
                payload: "x".repeat(100),
                tag: DataTag::Send
            }
            .wire_size(),
            100
        );
        let inv = AxmlMessage::Invoke {
            service: "svc".into(),
            params: vec!["<a/>".into(), "<b/>".into()],
            forward: vec![NodeAddr::new(
                PeerId(0),
                "d",
                NodeId::from_index(0).unwrap(),
            )],
            call_id: 7,
        };
        assert_eq!(inv.wire_size(), 3 + 8 + 24 + 8);
        assert_eq!(
            AxmlMessage::Response {
                call_id: 1,
                payload: "1234".into()
            }
            .wire_size(),
            12
        );
        assert_eq!(
            AxmlMessage::DeployQuery {
                query_xml: "q".repeat(10),
                as_service: "ss".into()
            }
            .wire_size(),
            12
        );
        assert_eq!(
            AxmlMessage::InstallDoc {
                name: "doc".into(),
                payload: "<t/>".into()
            }
            .wire_size(),
            7
        );
    }
}
