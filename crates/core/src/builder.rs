//! Fluent construction of [`AxmlSystem`]s.
//!
//! The builder replaces the imperative setup dance (`add_peer`,
//! `net_mut().set_link`, `install_doc`, …, each with its own `unwrap`)
//! with one declarative chain that defers every fallible step to
//! [`SystemBuilder::build`]:
//!
//! ```
//! use axml_core::prelude::*;
//!
//! let mut sys = AxmlSystem::builder()
//!     .peers(["client", "server"])
//!     .link("client", "server", LinkCost::wan())
//!     .doc("server", "catalog", r#"<catalog><pkg name="vim"/></catalog>"#)
//!     .service("server", "names", r#"doc("catalog")//pkg/@name"#)
//!     .build()
//!     .unwrap();
//! let client = sys.peer_id("client").unwrap();
//! let out = sys.eval(client, &Expr::Sc {
//!     provider: PeerRef::At(sys.peer_id("server").unwrap()),
//!     service: "names".into(),
//!     params: vec![],
//!     forward: vec![],
//! }).unwrap();
//! assert_eq!(out.len(), 1);
//! ```
//!
//! Peers are referred to **by name or by id** everywhere ([`PeerSel`]):
//! `"server"` and `PeerId(1)` are interchangeable. Documents accept
//! either a parsed [`Tree`] or an XML source string ([`DocSource`]).
//! The first error encountered anywhere in the chain is remembered and
//! returned by `build()`; later steps are skipped, so a chain never
//! panics halfway through.

use crate::driver::DriverKind;
use crate::error::{CoreError, CoreResult};
use crate::pick::PickPolicy;
use crate::retry::RetryPolicy;
use crate::service::Service;
use crate::system::AxmlSystem;
use axml_net::link::{LinkCost, Topology};
use axml_net::transport::Transport;
use axml_net::FaultPlan;
use axml_obs::TraceSink;
use axml_xml::ids::{DocName, PeerId, ServiceName};
use axml_xml::tree::Tree;

/// A peer reference in builder position: an explicit id, or the name
/// given to [`SystemBuilder::peer`] / assigned by a topology (`"p0"`…).
#[derive(Debug, Clone)]
pub enum PeerSel {
    /// By id.
    Id(PeerId),
    /// By declared name.
    Name(String),
}

impl From<PeerId> for PeerSel {
    fn from(p: PeerId) -> Self {
        PeerSel::Id(p)
    }
}

impl From<&str> for PeerSel {
    fn from(name: &str) -> Self {
        PeerSel::Name(name.to_string())
    }
}

impl From<String> for PeerSel {
    fn from(name: String) -> Self {
        PeerSel::Name(name)
    }
}

/// Document content in builder position: a parsed tree or XML source.
#[derive(Debug, Clone)]
pub enum DocSource {
    /// An already-built tree.
    Tree(Tree),
    /// XML source, parsed at build time.
    Xml(String),
}

impl From<Tree> for DocSource {
    fn from(t: Tree) -> Self {
        DocSource::Tree(t)
    }
}

impl From<&str> for DocSource {
    fn from(xml: &str) -> Self {
        DocSource::Xml(xml.to_string())
    }
}

impl From<String> for DocSource {
    fn from(xml: String) -> Self {
        DocSource::Xml(xml)
    }
}

impl DocSource {
    fn into_tree(self) -> CoreResult<Tree> {
        match self {
            DocSource::Tree(t) => Ok(t),
            DocSource::Xml(src) => Tree::parse(&src).map_err(CoreError::Xml),
        }
    }
}

/// Fluent builder for [`AxmlSystem`] — see the module docs for a tour.
pub struct SystemBuilder {
    sys: AxmlSystem,
    err: Option<CoreError>,
}

impl AxmlSystem {
    /// Start a fluent system definition.
    pub fn builder() -> SystemBuilder {
        SystemBuilder {
            sys: AxmlSystem::new(),
            err: None,
        }
    }

    /// Look up a peer id by the name it was registered under.
    pub fn peer_id(&self, name: &str) -> Option<PeerId> {
        (0..self.net.peer_count())
            .map(|i| PeerId(i as u32))
            .find(|p| self.net.peer_name(*p) == Ok(name))
    }
}

impl SystemBuilder {
    fn resolve(&mut self, sel: PeerSel) -> Option<PeerId> {
        let found = match &sel {
            PeerSel::Id(p) => {
                if p.index() < self.sys.peer_count() {
                    Some(*p)
                } else {
                    None
                }
            }
            PeerSel::Name(name) => self.sys.peer_id(name),
        };
        if found.is_none() && self.err.is_none() {
            self.err = Some(match sel {
                PeerSel::Id(p) => CoreError::UnknownPeer(p),
                PeerSel::Name(name) => {
                    CoreError::Malformed(format!("builder: no peer named `{name}`"))
                }
            });
        }
        found
    }

    /// Run `f` unless an earlier step already failed; remember its error.
    fn step(mut self, f: impl FnOnce(&mut AxmlSystem) -> CoreResult<()>) -> Self {
        if self.err.is_none() {
            if let Err(e) = f(&mut self.sys) {
                self.err = Some(e);
            }
        }
        self
    }

    /// Swap the network substrate for an explicit [`Transport`] backend
    /// (e.g. a socket-backed one). Must come first — peers registered so
    /// far live on the transport being replaced.
    pub fn transport(mut self, net: Box<dyn Transport<crate::engine::Wire> + Send>) -> Self {
        if self.sys.peer_count() > 0 || net.peer_count() > 0 {
            if self.err.is_none() {
                self.err = Some(CoreError::Malformed(
                    "builder: transport() must precede peer declarations and take an empty \
                     transport"
                        .into(),
                ));
            }
            return self;
        }
        self.sys.net = net;
        self
    }

    /// Lay down a whole standard topology at once (peers named `p0`…
    /// `pN-1`) on the current transport backend. Must come first — ids
    /// are assigned assuming an empty peer set.
    pub fn topology(mut self, t: &Topology) -> Self {
        if self.sys.peer_count() > 0 && self.err.is_none() {
            self.err = Some(CoreError::Malformed(
                "builder: topology() must precede peer declarations".into(),
            ));
            return self;
        }
        if self.err.is_none() {
            self.sys.net.install_topology(t);
            for _ in 0..t.peer_count() {
                self.sys.peers.push(crate::peer::PeerState::new());
                self.sys.state_epochs.push(0);
            }
        }
        self
    }

    /// Declare one peer. Ids are assigned in declaration order.
    pub fn peer(mut self, name: impl Into<String>) -> Self {
        self.sys.add_peer(name);
        self
    }

    /// Declare several peers at once.
    pub fn peers<I>(mut self, names: I) -> Self
    where
        I: IntoIterator,
        I::Item: Into<String>,
    {
        for n in names {
            self.sys.add_peer(n);
        }
        self
    }

    /// Configure both directions of the link between two peers.
    pub fn link(mut self, a: impl Into<PeerSel>, b: impl Into<PeerSel>, cost: LinkCost) -> Self {
        let (a, b) = (self.resolve(a.into()), self.resolve(b.into()));
        if let (Some(a), Some(b)) = (a, b) {
            self.sys.net_mut().set_link(a, b, cost);
        }
        self
    }

    /// Install a document (XML source or a parsed [`Tree`]) on a peer.
    pub fn doc(
        mut self,
        at: impl Into<PeerSel>,
        name: impl Into<DocName>,
        content: impl Into<DocSource>,
    ) -> Self {
        let at = self.resolve(at.into());
        let (name, content) = (name.into(), content.into());
        self.step(|sys| {
            let at = at.expect("resolve recorded the error");
            sys.install_doc(at, name, content.into_tree()?)
        })
    }

    /// Install a document and register it in a generic equivalence class
    /// (definition (9) / §2.3 generic documents).
    pub fn replica(
        mut self,
        at: impl Into<PeerSel>,
        class: impl Into<DocName>,
        concrete: impl Into<DocName>,
        content: impl Into<DocSource>,
    ) -> Self {
        let at = self.resolve(at.into());
        let (class, concrete, content) = (class.into(), concrete.into(), content.into());
        self.step(|sys| {
            let at = at.expect("resolve recorded the error");
            sys.install_replica(at, class, concrete, content.into_tree()?)
        })
    }

    /// Register a declarative service from query source.
    pub fn service(
        mut self,
        at: impl Into<PeerSel>,
        name: impl Into<ServiceName>,
        query_src: &str,
    ) -> Self {
        let at = self.resolve(at.into());
        let name = name.into();
        let src = query_src.to_string();
        self.step(|sys| {
            let at = at.expect("resolve recorded the error");
            sys.register_declarative_service(at, name, &src)
        })
    }

    /// Register a pre-built [`Service`] (e.g. one with a typed signature).
    pub fn service_obj(mut self, at: impl Into<PeerSel>, service: Service) -> Self {
        let at = self.resolve(at.into());
        self.step(|sys| {
            let at = at.expect("resolve recorded the error");
            sys.register_service(at, service)
        })
    }

    /// Register a service replica under a generic service class.
    pub fn service_replica(
        mut self,
        class: impl Into<ServiceName>,
        at: impl Into<PeerSel>,
        concrete: impl Into<ServiceName>,
    ) -> Self {
        let at = self.resolve(at.into());
        let (class, concrete) = (class.into(), concrete.into());
        self.step(|sys| {
            sys.catalog_mut().add_service_replica(
                class,
                at.expect("resolve recorded the error"),
                concrete,
            );
            Ok(())
        })
    }

    /// Set the `pickDoc`/`pickService` policy (definition (9)).
    pub fn pick_policy(mut self, policy: PickPolicy) -> Self {
        self.sys.set_pick_policy(policy);
        self
    }

    /// Seed the engine's deterministic tie-breaking PRNG.
    pub fn seed(mut self, seed: u64) -> Self {
        self.sys.set_engine_seed(seed);
        self
    }

    /// Select the evaluation driver ([`DriverKind`]). Both drivers
    /// produce bit-identical results, stats and reports; the parallel
    /// one precomputes independent work on a worker pool.
    pub fn driver(mut self, driver: DriverKind) -> Self {
        self.sys.set_driver(driver);
        self
    }

    /// Shorthand for `.driver(DriverKind::Parallel { threads })`
    /// (`threads == 0` means "use the machine's available parallelism").
    pub fn parallel(self, threads: usize) -> Self {
        self.driver(DriverKind::Parallel { threads })
    }

    /// Select the transport's event-scheduler backend (see
    /// [`AxmlSystem::set_scheduler`]): the reference priority queue or
    /// the O(1)-advance event wheel, bit-identical in delivery order.
    pub fn scheduler(mut self, kind: axml_net::wheel::SchedulerKind) -> Self {
        self.sys.set_scheduler(kind);
        self
    }

    /// Attach a trace sink from the first evaluation on.
    pub fn trace(mut self, sink: impl TraceSink + 'static) -> Self {
        self.sys.set_trace_sink(Box::new(sink));
        self
    }

    /// Set the engine's [`RetryPolicy`] for failed send attempts.
    pub fn retry(mut self, policy: RetryPolicy) -> Self {
        self.sys.set_retry_policy(policy);
        self
    }

    /// Enable replica failover for `@any` references (see
    /// [`AxmlSystem::set_failover`]).
    pub fn failover(mut self, enabled: bool) -> Self {
        self.sys.set_failover(enabled);
        self
    }

    /// Install a seeded [`FaultPlan`] on the network: injected drops,
    /// outage windows, latency jitter and crash schedules, all
    /// reproducible from the plan's seed.
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.sys.net_mut().set_fault_plan(plan);
        self
    }

    /// Finish: the configured system, or the **first** error any step
    /// produced.
    pub fn build(self) -> CoreResult<AxmlSystem> {
        match self.err {
            None => Ok(self.sys),
            Some(e) => Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{Expr, PeerRef};
    use axml_obs::VecSink;

    #[test]
    fn fluent_chain_builds_working_system() {
        let mut sys = AxmlSystem::builder()
            .peers(["client", "server"])
            .link("client", "server", LinkCost::wan())
            .doc(
                "server",
                "catalog",
                r#"<catalog><pkg name="vim"/></catalog>"#,
            )
            .service("server", "names", r#"doc("catalog")//pkg/@name"#)
            .pick_policy(PickPolicy::Closest)
            .seed(42)
            .build()
            .unwrap();
        let client = sys.peer_id("client").unwrap();
        let server = sys.peer_id("server").unwrap();
        assert_eq!((client, server), (PeerId(0), PeerId(1)));
        let out = sys
            .eval(
                client,
                &Expr::Sc {
                    provider: PeerRef::At(server),
                    service: "names".into(),
                    params: vec![],
                    forward: vec![],
                },
            )
            .unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(sys.stats().total_messages(), 2);
    }

    #[test]
    fn ids_and_names_are_interchangeable() {
        let sys = AxmlSystem::builder()
            .peers(["a", "b"])
            .link(PeerId(0), "b", LinkCost::lan())
            .doc(PeerId(1), "d", "<x/>")
            .build()
            .unwrap();
        assert!(sys.peer(PeerId(1)).docs.contains(&"d".into()));
    }

    #[test]
    fn topology_seeds_named_peers() {
        let sys = AxmlSystem::builder()
            .topology(&Topology::Uniform {
                n: 3,
                cost: LinkCost::wan(),
            })
            .doc("p2", "d", "<x/>")
            .build()
            .unwrap();
        assert_eq!(sys.peer_count(), 3);
        assert!(sys.peer(PeerId(2)).docs.contains(&"d".into()));
    }

    #[test]
    fn first_error_wins_and_later_steps_are_skipped() {
        let err = AxmlSystem::builder()
            .peer("a")
            .doc("a", "d", "<oops")
            .doc("nobody", "e", "<x/>")
            .build()
            .err()
            .unwrap();
        assert!(matches!(err, CoreError::Xml(_)), "{err}");

        let err = AxmlSystem::builder()
            .peer("a")
            .link("a", "ghost", LinkCost::lan())
            .build()
            .err()
            .unwrap();
        assert!(err.to_string().contains("ghost"), "{err}");
    }

    #[test]
    fn replicas_and_trace_sink() {
        let sink = VecSink::new();
        let mut sys = AxmlSystem::builder()
            .peers(["a", "b"])
            .link("a", "b", LinkCost::wan())
            .replica("a", "cat", "cat-a", "<c/>")
            .replica("b", "cat", "cat-b", "<c/>")
            .trace(sink.clone())
            .build()
            .unwrap();
        assert_eq!(sys.catalog().doc_replicas(&"cat".into()).len(), 2);
        let a = sys.peer_id("a").unwrap();
        sys.eval(
            a,
            &Expr::Doc {
                name: "cat".into(),
                at: PeerRef::Any,
            },
        )
        .unwrap();
        assert!(!sink.is_empty(), "builder-attached sink receives events");
    }

    #[test]
    fn topology_after_peers_is_rejected() {
        let err = AxmlSystem::builder()
            .peer("a")
            .topology(&Topology::Uniform {
                n: 2,
                cost: LinkCost::lan(),
            })
            .build()
            .err()
            .unwrap();
        assert!(err.to_string().contains("topology"), "{err}");
    }
}
