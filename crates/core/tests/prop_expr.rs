//! Property tests over *randomly generated expressions* (not just the
//! seed shapes): the wire format round-trips, evaluation is total on
//! well-formed expressions, delegation wrapping preserves values, and the
//! optimizer never changes answers.

use axml_core::cost::CostModel;
use axml_core::prelude::*;
use axml_xml::equiv::forest_equiv;
use axml_xml::tree::Tree;
use proptest::prelude::*;

const N_PEERS: u32 = 3;

fn build_system() -> AxmlSystem {
    let mut builder = AxmlSystem::builder().topology(&Topology::Uniform {
        n: N_PEERS as usize,
        cost: LinkCost::wan(),
    });
    for p in 0..N_PEERS {
        let mut xml = String::from("<catalog>");
        for i in 0..10 {
            xml.push_str(&format!(
                r#"<pkg name="p{p}-{i}"><size>{}</size></pkg>"#,
                i * 1000
            ));
        }
        xml.push_str("</catalog>");
        builder = builder.doc(PeerId(p), "catalog", xml).service(
            PeerId(p),
            "all",
            r#"doc("catalog")//pkg"#,
        );
    }
    builder.build().unwrap()
}

/// A generator of well-formed expressions over the fixed 3-peer system.
/// Depth-bounded; every generated expression is evaluable at any peer.
fn arb_expr() -> impl Strategy<Value = Expr> {
    let peer = (0..N_PEERS).prop_map(PeerId);
    let leaf = prop_oneof![
        peer.clone().prop_map(|p| Expr::Doc {
            name: "catalog".into(),
            at: PeerRef::At(p),
        }),
        (peer, 0usize..5).prop_map(|(p, k)| Expr::Tree {
            tree: Tree::parse(&format!("<lit><v>{k}</v></lit>")).unwrap(),
            at: p,
        }),
    ];
    leaf.prop_recursive(3, 12, 2, move |inner| {
        let peer = (0..N_PEERS).prop_map(PeerId);
        prop_oneof![
            // unary query over any sub-expression
            (inner.clone(), peer.clone(), 0usize..3).prop_map(|(arg, def_at, qi)| {
                let srcs = [
                    "$0//pkg",
                    r#"for $x in $0//pkg where $x/size/text() > 4000 return <big>{$x/@name}</big>"#,
                    "for $x in $0//v return <got>{$x/text()}</got>",
                ];
                Expr::Apply {
                    query: LocatedQuery::new(Query::parse("q", srcs[qi]).unwrap(), def_at),
                    args: vec![arg],
                }
            }),
            // service call with a generated parameter
            (inner.clone(), peer.clone()).prop_map(|(_param, p)| Expr::Sc {
                provider: PeerRef::At(p),
                service: "all".into(),
                params: vec![],
                forward: vec![],
            }),
            // delegation wrapper (rule 14 shape) — built via the same
            // retargeting discipline the rules use
            (inner.clone(), peer).prop_map(|(e, p)| {
                let mut moved = e;
                // returns inside `moved` previously targeted "wherever the
                // caller is"; the generator only builds evaluation-site-
                // independent leaves below EvalAt, so a plain wrap works
                // when we send back to the future evaluation site — which
                // the evaluating property supplies as site 0.
                moved.retarget_returns(PeerId(0), p);
                Expr::EvalAt {
                    peer: p,
                    expr: Box::new(Expr::Send {
                        dest: SendDest::Peer(PeerId(0)),
                        payload: Box::new(moved),
                    }),
                }
            }),
            // sequencing
            proptest::collection::vec(inner, 1..3).prop_map(Expr::Seq),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The XML wire format round-trips every generated expression.
    #[test]
    fn wire_roundtrip(e in arb_expr()) {
        let xml = e.to_xml();
        let back = Expr::from_xml(&xml, xml.root()).unwrap();
        prop_assert_eq!(e.fingerprint(), back.fingerprint());
        prop_assert_eq!(e.wire_size(), back.wire_size());
    }

    /// Evaluation at peer 0 is total (no panics, no spurious errors) and
    /// deterministic.
    #[test]
    fn eval_total_and_deterministic(e in arb_expr()) {
        let mut s1 = build_system();
        let mut s2 = build_system();
        let v1 = s1.eval(PeerId(0), &e).unwrap();
        let v2 = s2.eval(PeerId(0), &e).unwrap();
        prop_assert!(forest_equiv(&v1, &v2));
        prop_assert_eq!(s1.stats().total_bytes(), s2.stats().total_bytes());
    }

    /// The optimizer preserves the value of arbitrary expressions and
    /// never estimates its output worse than the input.
    #[test]
    fn optimizer_value_preserving(e in arb_expr()) {
        let sys = build_system();
        let model = CostModel::from_system(&sys);
        let plan = Optimizer::standard().optimize(&model, PeerId(0), &e);
        prop_assert!(plan.cost.scalar() <= model.scalar_cost(PeerId(0), &e) + 1e-9);
        let mut s1 = build_system();
        let mut s2 = build_system();
        let v1 = s1.eval(PeerId(0), &e).unwrap();
        let v2 = s2.eval(PeerId(0), &plan.expr).unwrap();
        prop_assert!(
            forest_equiv(&v1, &v2),
            "trace {:?}\n naive: {}\n opt:   {}",
            plan.trace, e, plan.expr
        );
    }

    /// Delegating any expression to any peer and shipping the value back
    /// (rule (14)) preserves it.
    #[test]
    fn rule_14_holds_for_random_expressions(e in arb_expr(), target in 0..N_PEERS) {
        let mut s1 = build_system();
        let v1 = s1.eval(PeerId(0), &e).unwrap();
        let mut moved = e.clone();
        moved.retarget_returns(PeerId(0), PeerId(target));
        let wrapped = Expr::EvalAt {
            peer: PeerId(target),
            expr: Box::new(Expr::Send {
                dest: SendDest::Peer(PeerId(0)),
                payload: Box::new(moved),
            }),
        };
        let mut s2 = build_system();
        let v2 = s2.eval(PeerId(0), &wrapped).unwrap();
        prop_assert!(forest_equiv(&v1, &v2), "e = {e}");
    }
}
