//! Property tests for the §3.3 equivalence rules: **soundness on random
//! systems**.
//!
//! The paper defines `e1@p1 ≡ e2@p2` as: for any system state Σ, both
//! evaluations produce the same results and leave the same Σ. These tests
//! randomize the state (catalog contents, replica placement, link costs),
//! build a naive expression, apply every rewrite the rule set proposes
//! (one step, at every position), execute both plans on identical fresh
//! systems, and compare:
//!
//! * the produced forests (canonical multiset equality), always;
//! * the final Σ snapshots, for Σ-preserving rules; for rule (13) —
//!   which deliberately materializes a temp document, as in the paper —
//!   Σ must be a conservative extension (all original docs unchanged).

use axml_core::cost::CostModel;
use axml_core::prelude::*;
use axml_core::rules::{all_rewrites, rule_preserves_sigma, standard_rules, OptContext};
use axml_xml::equiv::forest_equiv;
use axml_xml::tree::Tree;
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct Scenario {
    /// Package tuples per peer-b catalog.
    pkgs: Vec<(String, u32)>,
    /// Threshold used in the selection.
    threshold: u32,
    /// Link quality selector: 0 = wan everywhere, 1 = slow a–b, 2 = lan.
    links: u8,
    /// Whether a replica of the catalog also lives on peer c.
    replicated: bool,
    /// Query selector from the pool.
    query: usize,
}

fn queries() -> Vec<&'static str> {
    vec![
        r#"for $p in $0//pkg where $p/size/text() > 5000 return <big>{$p/@name}</big>"#,
        r#"for $p in $0//pkg where contains($p/@name, "a") return {$p}"#,
        "$0//pkg/@name",
        r#"for $p in $0//pkg where $p/size/text() > 1 and $p/size/text() < 9999999 return <r>{$p/size}</r>"#,
    ]
}

fn arb_scenario() -> impl Strategy<Value = Scenario> {
    (
        proptest::collection::vec(("[a-z]{1,8}", 0u32..100_000), 0..20),
        0u32..100_000,
        0u8..3,
        any::<bool>(),
        0..queries().len(),
    )
        .prop_map(|(pkgs, threshold, links, replicated, query)| Scenario {
            pkgs,
            threshold,
            links,
            replicated,
            query,
        })
}

fn build_system(s: &Scenario) -> (AxmlSystem, PeerId, PeerId, PeerId) {
    let (ab, ac, bc) = match s.links {
        0 => (LinkCost::wan(), LinkCost::wan(), LinkCost::wan()),
        1 => (LinkCost::slow(), LinkCost::lan(), LinkCost::lan()),
        _ => (LinkCost::lan(), LinkCost::wan(), LinkCost::lan()),
    };
    let mut xml = String::from("<catalog>");
    for (name, size) in &s.pkgs {
        xml.push_str(&format!(r#"<pkg name="{name}"><size>{size}</size></pkg>"#));
    }
    xml.push_str("</catalog>");
    let tree = Tree::parse(&xml).unwrap();
    let mut builder = AxmlSystem::builder()
        .peers(["a", "b", "c"])
        .link("a", "b", ab)
        .link("a", "c", ac)
        .link("b", "c", bc)
        .replica("b", "cat", "catalog", tree.clone())
        .service("b", "all-pkgs", r#"doc("catalog")//pkg"#);
    if s.replicated {
        builder = builder.replica("c", "cat", "catalog-c", tree);
    }
    let sys = builder.build().unwrap();
    (sys, PeerId(0), PeerId(1), PeerId(2))
}

/// Naive expressions to seed the rewriting from.
fn seed_exprs(s: &Scenario, a: PeerId, b: PeerId) -> Vec<Expr> {
    let q = Query::parse("q", queries()[s.query]).unwrap();
    let sel = Query::parse(
        "sel",
        &format!(
            r#"for $p in $0//pkg where $p/size/text() > {} return <hit>{{$p/@name}}</hit>"#,
            s.threshold
        ),
    )
    .unwrap();
    vec![
        // remote document fetch
        Expr::Doc {
            name: "catalog".into(),
            at: PeerRef::At(b),
        },
        // generic reference
        Expr::Doc {
            name: "cat".into(),
            at: PeerRef::Any,
        },
        // query over remote doc
        Expr::Apply {
            query: LocatedQuery::new(q, a),
            args: vec![Expr::Doc {
                name: "catalog".into(),
                at: PeerRef::At(b),
            }],
        },
        // selective query (decomposable)
        Expr::Apply {
            query: LocatedQuery::new(sel.clone(), a),
            args: vec![Expr::Doc {
                name: "catalog".into(),
                at: PeerRef::At(b),
            }],
        },
        // query over a service call (rule 16 target)
        Expr::Apply {
            query: LocatedQuery::new(
                Query::parse("fmt", "for $t in $0 return <w>{$t/@name}</w>").unwrap(),
                a,
            ),
            args: vec![Expr::Sc {
                provider: PeerRef::At(b),
                service: "all-pkgs".into(),
                params: vec![],
                forward: vec![],
            }],
        },
        // delegated fetch (rule 12/14 target)
        Expr::EvalAt {
            peer: b,
            expr: Box::new(Expr::Send {
                dest: SendDest::Peer(a),
                payload: Box::new(Expr::Apply {
                    query: LocatedQuery::new(sel, a),
                    args: vec![Expr::Doc {
                        name: "catalog".into(),
                        at: PeerRef::At(b),
                    }],
                }),
            }),
        },
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every single-step rewrite the rule set proposes is sound:
    /// same value, and same (or conservatively extended) Σ.
    #[test]
    fn one_step_rewrites_are_sound(s in arb_scenario(), seed_idx in 0usize..6) {
        let (sys0, a, b, _c) = build_system(&s);
        let model = CostModel::from_system(&sys0);
        let ctx = OptContext::new(&model);
        let rules = standard_rules();
        let seeds = seed_exprs(&s, a, b);
        let naive = &seeds[seed_idx];

        // Reference run.
        let (mut ref_sys, _, _, _) = build_system(&s);
        let ref_val = ref_sys.eval(a, naive).unwrap();
        let ref_sigma = ref_sys.snapshot();

        for (rule, candidate) in all_rewrites(&rules, a, naive, &ctx) {
            let (mut sys, _, _, _) = build_system(&s);
            let val = sys.eval(a, &candidate).unwrap_or_else(|e| {
                panic!("rewrite by {rule} failed to evaluate: {e}\n  {candidate}")
            });
            prop_assert!(
                forest_equiv(&ref_val, &val),
                "{rule} changed the value:\n  naive: {naive}\n  rewritten: {candidate}\n  {} vs {} trees",
                ref_val.len(), val.len()
            );
            let sigma = sys.snapshot();
            if rule_preserves_sigma(&rules, rule) {
                prop_assert!(
                    sigma == ref_sigma,
                    "{rule} changed Σ:\n  {candidate}"
                );
            } else {
                // Conservative extension: every original doc unchanged.
                for (p, (before, after)) in ref_sigma.iter().zip(&sigma).enumerate() {
                    for (name, canon) in &before.docs {
                        prop_assert!(
                            after.docs.get(name) == Some(canon),
                            "{rule} modified original doc {name} at p{p}"
                        );
                    }
                }
            }
        }
    }

    /// The optimizer's end-to-end output (multi-step rewriting) is sound
    /// and never worse than naive under the model's own estimate.
    #[test]
    fn optimized_plans_are_sound_and_not_worse(s in arb_scenario(), seed_idx in 0usize..6) {
        let (sys0, a, b, _c) = build_system(&s);
        let model = CostModel::from_system(&sys0);
        let seeds = seed_exprs(&s, a, b);
        let naive = &seeds[seed_idx];
        let plan = Optimizer::standard().optimize(&model, a, naive);
        prop_assert!(plan.cost.scalar() <= model.scalar_cost(a, naive) + 1e-9);

        let (mut s1, _, _, _) = build_system(&s);
        let (mut s2, _, _, _) = build_system(&s);
        let v1 = s1.eval(a, naive).unwrap();
        let v2 = s2.eval(a, &plan.expr).unwrap();
        prop_assert!(
            forest_equiv(&v1, &v2),
            "optimizer broke plan (trace {:?}):\n  {naive}\n  {}",
            plan.trace, plan.expr
        );
    }

    /// Expression XML round-trips survive arbitrary seeds (the wire format
    /// used by delegation requests).
    #[test]
    fn expr_wire_roundtrip(s in arb_scenario(), seed_idx in 0usize..6) {
        let (_sys, a, b, _c) = build_system(&s);
        let e = &seed_exprs(&s, a, b)[seed_idx];
        let xml = e.to_xml();
        let back = Expr::from_xml(&xml, xml.root()).unwrap();
        prop_assert_eq!(e.fingerprint(), back.fingerprint());
    }
}
