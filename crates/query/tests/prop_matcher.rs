//! Property test for the shared matching index: random queries from the
//! supported family, random base documents, random deltas — whenever the
//! probe reports a *miss* for a registered query, evaluating it before
//! and after grafting the delta must give identical results. This is the
//! soundness contract `feed` relies on to skip re-evaluation.

use axml_prng::SplitMix64;
use axml_query::{MatchIndex, Query};
use axml_xml::ids::DocName;
use axml_xml::tree::Tree;
use std::collections::HashMap;

const TOPICS: &[&str] = &["db", "ai", "os", "pl"];
const LABELS: &[&str] = &["item", "pkg", "entry", "note"];

/// One random query from the family the matcher claims to cover:
/// selective attribute filters, descendant paths, text/attr tails,
/// count/negation folds, joins, and the bare-doc fallback.
fn random_query(rng: &mut SplitMix64, i: usize) -> Query {
    let topic = TOPICS[rng.gen_range(0..TOPICS.len())];
    let label = LABELS[rng.gen_range(0..LABELS.len())];
    let src = match rng.gen_range(0..8u32) {
        0 => format!(r#"for $i in doc("d")/{label} where $i/@topic = "{topic}" return {{$i}}"#),
        1 => format!(r#"for $i in doc("d")//{label} where $i/@topic = "{topic}" return {{$i}}"#),
        2 => format!(r#"doc("d")/{label}/text()"#),
        3 => format!(r#"doc("d")//{label}/@topic"#),
        4 => {
            format!(r#"for $i in doc("d")/{label} where not(exists($i/hide)) return <r>{{$i}}</r>"#)
        }
        5 => format!(r#"for $i in doc("d")/{label} where count($i/sub) > 1 return {{$i}}"#),
        6 => format!(
            r#"for $a in doc("d")/{label} for $b in doc("d")/entry where $a/@topic = $b/@topic return {{$a}}"#
        ),
        _ => r#"doc("d")"#.to_string(),
    };
    Query::parse(format!("q{i}"), &src).unwrap()
}

/// A random delta tree drawn from shapes that sometimes touch the query
/// family above and sometimes miss it entirely.
fn random_delta(rng: &mut SplitMix64) -> Tree {
    let topic = TOPICS[rng.gen_range(0..TOPICS.len())];
    let label = LABELS[rng.gen_range(0..LABELS.len())];
    let src = match rng.gen_range(0..6u32) {
        0 => format!(r#"<{label} topic="{topic}">x</{label}>"#),
        1 => format!(r#"<{label}><sub/><sub/></{label}>"#),
        2 => format!(r#"<wrap><{label} topic="{topic}">deep</{label}></wrap>"#),
        3 => format!("<{label}><hide/></{label}>"),
        4 => "<noise attr=\"v\">plain</noise>".to_string(),
        _ => format!("<{label}>t</{label}>"),
    };
    Tree::parse(&src).unwrap()
}

fn serialize_all(ts: &[Tree]) -> Vec<String> {
    ts.iter().map(|t| t.serialize()).collect()
}

#[test]
fn probe_misses_never_hide_result_changes() {
    let mut rng = SplitMix64::new(0x5EED_CAFE);
    let mut total_skips = 0usize;
    for round in 0..60 {
        let mut seed_rng = rng.split();
        let queries: Vec<Query> = (0..8).map(|i| random_query(&mut seed_rng, i)).collect();
        let mut index = MatchIndex::new("d".into());
        for (i, q) in queries.iter().enumerate() {
            index.register(i as u64, q);
        }
        // Random base document: a handful of delta-shaped children.
        let mut base = Tree::parse("<d/>").unwrap();
        for _ in 0..seed_rng.gen_range(0..4usize) {
            let child = random_delta(&mut seed_rng);
            let root = base.root();
            base.graft(root, &child, child.root()).unwrap();
        }
        // Several deltas against the same registration set.
        for _ in 0..4 {
            let delta = random_delta(&mut seed_rng);
            let hits = index.probe(&delta);
            let mut grafted = base.clone();
            let root = grafted.root();
            grafted.graft(root, &delta, delta.root()).unwrap();
            let before: HashMap<DocName, Tree> = [("d".into(), base.clone())].into();
            let after: HashMap<DocName, Tree> = [("d".into(), grafted.clone())].into();
            for (i, q) in queries.iter().enumerate() {
                if hits.contains(&(i as u64)) {
                    continue;
                }
                total_skips += 1;
                let a = serialize_all(&q.eval_with_docs(&[], &before).unwrap());
                let b = serialize_all(&q.eval_with_docs(&[], &after).unwrap());
                assert_eq!(
                    a,
                    b,
                    "round {round}: probe missed query {i} ({:?}) but the \
                     delta {:?} changed its results",
                    q.name(),
                    delta.serialize()
                );
            }
            base = grafted;
        }
    }
    assert!(
        total_skips > 100,
        "the generator must exercise the skip path, got {total_skips}"
    );
}
