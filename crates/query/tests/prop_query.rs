//! Property tests for the query subsystem:
//!
//! * display ∘ parse round-trips,
//! * continuous (delta) evaluation ≡ batch re-evaluation,
//! * `decompose_selection` and `push_filter_into_path` preserve semantics
//!   on random inputs — these are the query-level halves of the paper's
//!   equivalence rules (10)/(11).

use axml_query::eval::NoDocs;
use axml_query::Query;
use axml_xml::equiv::forest_equiv;
use axml_xml::tree::Tree;
use proptest::prelude::*;

/// Random package catalogs: the workload family used across the repo.
fn arb_catalog() -> impl Strategy<Value = Tree> {
    proptest::collection::vec(
        (
            "[a-z]{1,6}",
            0u32..100_000,
            proptest::collection::vec("[a-z]{1,5}", 0..3),
        ),
        0..8,
    )
    .prop_map(|pkgs| {
        let mut t = Tree::new("catalog");
        let root = t.root();
        for (name, size, deps) in pkgs {
            let p = t.add_element(root, "pkg");
            t.set_attr(p, "name", name).unwrap();
            t.add_text_element(p, "size", size.to_string());
            if !deps.is_empty() {
                let d = t.add_element(p, "deps");
                for dep in deps {
                    t.add_text_element(d, "dep", dep);
                }
            }
        }
        t
    })
}

/// A pool of query sources exercising different operator shapes.
fn query_pool() -> Vec<&'static str> {
    vec![
        r#"for $p in $0//pkg where $p/size/text() > 5000 return <big>{$p/@name}</big>"#,
        r#"for $p in $0//pkg where contains($p/@name, "a") return {$p}"#,
        r#"for $p in $0//pkg[deps/dep = "ab"] return <d n="{$p/@name}"/>"#,
        r#"for $p in $0//pkg where not(exists($p/deps)) return <leaf>{$p/@name}</leaf>"#,
        "$0//dep",
        r#"for $a in $0//pkg for $b in $0//pkg where $a/size/text() < $b/size/text() return <lt/>"#,
        r#"let $all := $0//pkg where exists($all) return <count>{$all/@name}</count>"#,
        r#"for $p in $0//pkg where $p/size/text() >= 100 and $p/size/text() <= 50000 return {$p/size}"#,
        r#"for $p in $0//pkg where count($p/deps/dep) >= 2 return <multi>{$p/@name}</multi>"#,
    ]
}

fn arb_query() -> impl Strategy<Value = Query> {
    (0..query_pool().len()).prop_map(|i| Query::parse("q", query_pool()[i]).unwrap())
}

/// The monotone subset: every result, once produced, stays in the batch
/// answer as the input grows. (The `let`-aggregation query is excluded:
/// its single output tree *changes* with the input, and the continuous
/// evaluator — matching the paper's append-only stream semantics — emits
/// additions without retracting.)
fn arb_monotone_query() -> impl Strategy<Value = Query> {
    let pool: Vec<&str> = query_pool()
        .into_iter()
        .filter(|s| !s.starts_with("let"))
        .collect();
    (0..pool.len()).prop_map(move |i| Query::parse("q", pool[i]).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Continuous evaluation emits, across a whole stream, exactly the
    /// batch result over the accumulated forest.
    #[test]
    fn delta_equals_batch(
        q in arb_monotone_query(),
        stream in proptest::collection::vec(arb_catalog(), 1..6),
    ) {
        let mut cont = q.continuous(&NoDocs).unwrap();
        let mut emitted = Vec::new();
        for t in &stream {
            emitted.extend(cont.push(0, t.clone()).unwrap());
        }
        let batch = q.eval_batch(&[stream]).unwrap();
        prop_assert!(forest_equiv(&emitted, &batch),
            "continuous {} vs batch {}", emitted.len(), batch.len());
    }

    /// Decomposition (Example 1 / rule 11) preserves results whenever it
    /// applies.
    #[test]
    fn decompose_preserves(
        q in arb_query(),
        input in proptest::collection::vec(arb_catalog(), 0..4),
    ) {
        if let Some((outer, pushed)) = q.decompose_selection() {
            let direct = q.eval_batch(std::slice::from_ref(&input)).unwrap();
            let mid = pushed.eval_batch(&[input]).unwrap();
            let composed = outer.eval_batch(std::slice::from_ref(&mid)).unwrap();
            prop_assert!(forest_equiv(&direct, &composed));
            prop_assert!(mid.len() >= composed.len() || composed.is_empty()
                || mid.len() == composed.len());
        }
    }

    /// Folding a filter into a path predicate preserves results.
    #[test]
    fn push_filter_preserves(
        q in arb_query(),
        input in proptest::collection::vec(arb_catalog(), 0..4),
    ) {
        if let Some(folded) = q.push_filter_into_path() {
            let a = q.eval_batch(std::slice::from_ref(&input)).unwrap();
            let b = folded.eval_batch(&[input]).unwrap();
            prop_assert!(forest_equiv(&a, &b));
        }
    }

    /// Query XML serialization round-trips and preserves semantics.
    #[test]
    fn wire_roundtrip(
        q in arb_query(),
        input in proptest::collection::vec(arb_catalog(), 0..3),
    ) {
        let xml = q.to_xml();
        let back = Query::from_xml(&xml, xml.root()).unwrap();
        prop_assert_eq!(&q, &back);
        let a = q.eval_batch(std::slice::from_ref(&input)).unwrap();
        let b = back.eval_batch(&[input]).unwrap();
        prop_assert!(forest_equiv(&a, &b));
    }

    /// Composition evaluates stage-wise identically to manual piping.
    #[test]
    fn composition_is_piping(
        input in proptest::collection::vec(arb_catalog(), 0..4),
    ) {
        let inner = Query::parse("i", r#"for $p in $0//pkg where $p/size/text() > 100 return {$p}"#).unwrap();
        let outer = Query::parse("o", "for $t in $0 return <w>{$t/@name}</w>").unwrap();
        let comp = Query::compose("c", outer.clone(), vec![inner.clone()]).unwrap();
        let direct = comp.eval_batch(std::slice::from_ref(&input)).unwrap();
        let piped = outer.eval_batch(&[inner.eval_batch(&[input]).unwrap()]).unwrap();
        prop_assert!(forest_equiv(&direct, &piped));
    }

    /// Estimation sanity: non-negative and zero on empty input.
    #[test]
    fn estimates_sane(q in arb_query(), input in proptest::collection::vec(arb_catalog(), 0..4)) {
        use axml_query::estimate::{estimate, ForestStats};
        if let Some(plan) = q.plan() {
            let e = estimate(plan, &[ForestStats::collect(&input)]);
            prop_assert!(e.cardinality >= 0.0);
            prop_assert!(e.bytes >= 0.0);
            if input.is_empty() {
                prop_assert_eq!(e.cardinality, 0.0);
            }
        }
    }
}
