//! Batch evaluation of query plans over forests of input trees.
//!
//! Inputs are *forests* (`Vec<Tree>`) — one per query parameter — because
//! in AXML every query is continuous (§2.2) and its inputs are streams of
//! trees accumulated under a node; a batch evaluation sees the forest
//! accumulated so far. [`crate::delta`] builds the incremental evaluator
//! on top of this one.
//!
//! ## Semantics notes
//!
//! * `path/text()` yields the *string value* of the context node (one
//!   atom, omitted when empty); `path//text()` yields one atom per
//!   descendant text leaf.
//! * Comparisons are existential (any pair of atoms may satisfy them) and
//!   numeric when **both** sides parse as numbers, string-wise otherwise.
//! * A top-level bare `{path}` template emits one result tree per matched
//!   item; atoms become `<text>…</text>` trees.

use crate::ast::{Axis, CmpOp};
use crate::error::{QueryError, QueryResult};
use crate::plan::{
    AttrTplPlan, Op, OperandPlan, PathPlan, Plan, PlanStep, PlanTest, PredPlan, SourceRef,
    StartRef, TemplatePlan,
};
use axml_xml::ids::DocName;
use axml_xml::tree::{NodeId, NodeKind, Tree};

/// A forest: the trees accumulated so far on one input stream.
pub type Forest = Vec<Tree>;

/// Resolves `doc("name")` references during evaluation.
pub trait DocResolver {
    /// The tree of the named document, if known.
    fn resolve(&self, name: &DocName) -> Option<&Tree>;
}

/// A resolver that knows no documents.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoDocs;

impl DocResolver for NoDocs {
    fn resolve(&self, _name: &DocName) -> Option<&Tree> {
        None
    }
}

impl DocResolver for std::collections::HashMap<DocName, Tree> {
    fn resolve(&self, name: &DocName) -> Option<&Tree> {
        self.get(name)
    }
}

/// One value flowing through a path: a node of some input tree, or an
/// atomic string (attribute/text value).
#[derive(Debug, Clone)]
pub enum PItem<'a> {
    /// A node inside a context tree.
    Node {
        /// The tree.
        tree: &'a Tree,
        /// The node.
        node: NodeId,
    },
    /// An atomic string value.
    Atom(String),
}

impl PItem<'_> {
    /// XPath-style atomization: nodes become their string value.
    pub fn atomize(&self) -> String {
        match self {
            PItem::Node { tree, node } => tree.text(*node),
            PItem::Atom(s) => s.clone(),
        }
    }
}

/// A bound variable value.
#[derive(Debug, Clone)]
pub enum BindVal<'a> {
    /// A single item (`for` variables).
    One(PItem<'a>),
    /// A whole sequence (`let` variables).
    Seq(Vec<PItem<'a>>),
}

type Binds<'a> = Vec<Option<BindVal<'a>>>;

/// Evaluation context: the input forests plus a document resolver, with an
/// optional per-parameter override used by the delta evaluator.
pub struct Ctx<'a> {
    inputs: &'a [Forest],
    docs: &'a dyn DocResolver,
    override_param: Option<(usize, &'a [Tree])>,
}

impl<'a> Ctx<'a> {
    /// A plain context.
    pub fn new(inputs: &'a [Forest], docs: &'a dyn DocResolver) -> Self {
        Ctx {
            inputs,
            docs,
            override_param: None,
        }
    }

    /// A context in which parameter `param` is replaced by `trees`
    /// (delta evaluation binds it to just the newly-arrived tree).
    pub fn with_override(
        inputs: &'a [Forest],
        docs: &'a dyn DocResolver,
        param: usize,
        trees: &'a [Tree],
    ) -> Self {
        Ctx {
            inputs,
            docs,
            override_param: Some((param, trees)),
        }
    }

    fn param(&self, i: usize) -> QueryResult<&'a [Tree]> {
        if let Some((p, trees)) = self.override_param {
            if p == i {
                return Ok(trees);
            }
        }
        self.inputs
            .get(i)
            .map(|f| f.as_slice())
            .ok_or(QueryError::ArityMismatch {
                expected: i + 1,
                got: self.inputs.len(),
            })
    }
}

impl Plan {
    /// Evaluate the plan over the given forests.
    pub fn eval(&self, inputs: &[Forest], docs: &dyn DocResolver) -> QueryResult<Vec<Tree>> {
        if inputs.len() < self.arity {
            return Err(QueryError::ArityMismatch {
                expected: self.arity,
                got: inputs.len(),
            });
        }
        let ctx = Ctx::new(inputs, docs);
        self.eval_ctx(&ctx)
    }

    /// Evaluate under an explicit context (used by the delta evaluator).
    pub fn eval_ctx<'a>(&self, ctx: &Ctx<'a>) -> QueryResult<Vec<Tree>> {
        // Collect the operator chain innermost-first (Unit excluded).
        let mut chain: Vec<&Op> = Vec::with_capacity(4);
        let mut cur = Some(&self.ops);
        while let Some(op) = cur {
            if !matches!(op, Op::Unit) {
                chain.push(op);
            }
            cur = op.input();
        }
        chain.reverse();
        let mut binds: Binds<'a> = vec![None; self.n_vars];
        let mut out = Vec::new();
        self.run(&chain, ctx, &mut binds, &mut out)?;
        Ok(out)
    }

    fn run<'a>(
        &self,
        ops: &[&Op],
        ctx: &Ctx<'a>,
        binds: &mut Binds<'a>,
        out: &mut Vec<Tree>,
    ) -> QueryResult<()> {
        match ops.first() {
            None => {
                out.extend(construct(&self.template, ctx, binds)?);
                Ok(())
            }
            Some(Op::ForEach { var, path, .. }) => {
                let items = eval_path(path, ctx, binds, None)?;
                for it in items {
                    binds[*var] = Some(BindVal::One(it));
                    self.run(&ops[1..], ctx, binds, out)?;
                }
                binds[*var] = None;
                Ok(())
            }
            Some(Op::LetBind { var, path, .. }) => {
                let items = eval_path(path, ctx, binds, None)?;
                binds[*var] = Some(BindVal::Seq(items));
                self.run(&ops[1..], ctx, binds, out)?;
                binds[*var] = None;
                Ok(())
            }
            Some(Op::Filter { pred, .. }) => {
                if eval_pred(pred, ctx, binds, None)? {
                    self.run(&ops[1..], ctx, binds, out)?;
                }
                Ok(())
            }
            Some(Op::Unit) => Err(QueryError::Internal(
                "Unit inside the operator chain".into(),
            )),
        }
    }
}

/// Evaluate a path to its item sequence.
pub fn eval_path<'a>(
    path: &PathPlan,
    ctx: &Ctx<'a>,
    binds: &Binds<'a>,
    context: Option<&PItem<'a>>,
) -> QueryResult<Vec<PItem<'a>>> {
    let mut items: Vec<PItem<'a>> = match &path.start {
        StartRef::Source(SourceRef::Param(i)) => ctx
            .param(*i)?
            .iter()
            .map(|t| PItem::Node {
                tree: t,
                node: t.root(),
            })
            .collect(),
        StartRef::Source(SourceRef::Doc(d)) => {
            let tree = ctx
                .docs
                .resolve(d)
                .ok_or_else(|| QueryError::UnresolvedDoc(d.to_string()))?;
            vec![PItem::Node {
                tree,
                node: tree.root(),
            }]
        }
        StartRef::Var(v) => match binds.get(*v).and_then(|b| b.as_ref()) {
            Some(BindVal::One(it)) => vec![it.clone()],
            Some(BindVal::Seq(s)) => s.clone(),
            None => {
                return Err(QueryError::Internal(format!(
                    "variable slot {v} unbound at evaluation time"
                )))
            }
        },
        StartRef::Context => match context {
            Some(it) => vec![it.clone()],
            None => {
                return Err(QueryError::Internal(
                    "context path outside a predicate".into(),
                ))
            }
        },
    };
    for step in &path.steps {
        items = apply_step(step, &items, ctx, binds)?;
    }
    Ok(items)
}

fn apply_step<'a>(
    step: &PlanStep,
    items: &[PItem<'a>],
    ctx: &Ctx<'a>,
    binds: &Binds<'a>,
) -> QueryResult<Vec<PItem<'a>>> {
    let mut out: Vec<PItem<'a>> = Vec::new();
    for it in items {
        let (tree, node) = match it {
            PItem::Node { tree, node } => (*tree, *node),
            PItem::Atom(_) => continue, // steps do not apply to atoms
        };
        match (&step.axis, &step.test) {
            (Axis::Child, PlanTest::Label(l)) => {
                for c in tree.children_labeled(node, l.as_str()) {
                    out.push(PItem::Node { tree, node: c });
                }
            }
            (Axis::Child, PlanTest::Wildcard) => {
                for &c in tree.children(node) {
                    if tree.node(c).is_element() {
                        out.push(PItem::Node { tree, node: c });
                    }
                }
            }
            (Axis::Child, PlanTest::Text) => {
                let v = tree.text(node);
                if !v.is_empty() {
                    out.push(PItem::Atom(v));
                }
            }
            (Axis::Child, PlanTest::Attr(a)) => {
                if let Some(v) = tree.attr(node, a.as_str()) {
                    out.push(PItem::Atom(v.to_string()));
                }
            }
            (Axis::Descendant, PlanTest::Label(l)) => {
                for d in tree.descendants_labeled(node, l.as_str()) {
                    out.push(PItem::Node { tree, node: d });
                }
            }
            (Axis::Descendant, PlanTest::Wildcard) => {
                for d in tree.descendants(node) {
                    if tree.node(d).is_element() {
                        out.push(PItem::Node { tree, node: d });
                    }
                }
            }
            (Axis::Descendant, PlanTest::Text) => {
                for d in tree.descendants(node) {
                    if let NodeKind::Text(t) = tree.node(d).kind() {
                        out.push(PItem::Atom(t.clone()));
                    }
                }
            }
            (Axis::Descendant, PlanTest::Attr(a)) => {
                for d in tree.descendants_with_self(node) {
                    if let Some(v) = tree.attr(d, a.as_str()) {
                        out.push(PItem::Atom(v.to_string()));
                    }
                }
            }
        }
    }
    // Apply predicates to the surviving items.
    if step.preds.is_empty() {
        return Ok(out);
    }
    let mut kept = Vec::with_capacity(out.len());
    'items: for it in out {
        for pred in &step.preds {
            if !eval_pred(pred, ctx, binds, Some(&it))? {
                continue 'items;
            }
        }
        kept.push(it);
    }
    Ok(kept)
}

/// Evaluate a predicate.
pub fn eval_pred<'a>(
    pred: &PredPlan,
    ctx: &Ctx<'a>,
    binds: &Binds<'a>,
    context: Option<&PItem<'a>>,
) -> QueryResult<bool> {
    Ok(match pred {
        PredPlan::And(a, b) => {
            eval_pred(a, ctx, binds, context)? && eval_pred(b, ctx, binds, context)?
        }
        PredPlan::Or(a, b) => {
            eval_pred(a, ctx, binds, context)? || eval_pred(b, ctx, binds, context)?
        }
        PredPlan::Not(c) => !eval_pred(c, ctx, binds, context)?,
        PredPlan::Cmp { lhs, op, rhs } => {
            let left: Vec<String> = eval_path(lhs, ctx, binds, context)?
                .iter()
                .map(PItem::atomize)
                .collect();
            let right: Vec<String> = match rhs {
                OperandPlan::Literal(l) => vec![l.clone()],
                OperandPlan::Path(p) => eval_path(p, ctx, binds, context)?
                    .iter()
                    .map(PItem::atomize)
                    .collect(),
            };
            left.iter()
                .any(|a| right.iter().any(|b| compare(*op, a, b)))
        }
        PredPlan::Contains { path, needle } => eval_path(path, ctx, binds, context)?
            .iter()
            .any(|it| it.atomize().contains(needle.as_str())),
        PredPlan::Exists(p) => !eval_path(p, ctx, binds, context)?.is_empty(),
        PredPlan::CountCmp { path, op, n } => {
            let count = eval_path(path, ctx, binds, context)?.len() as f64;
            compare(*op, &count.to_string(), &n.to_string())
        }
    })
}

/// Compare two atoms: numerically when both parse as numbers, else as
/// strings.
pub fn compare(op: CmpOp, a: &str, b: &str) -> bool {
    if let (Ok(x), Ok(y)) = (a.parse::<f64>(), b.parse::<f64>()) {
        return match op {
            CmpOp::Eq => x == y,
            CmpOp::Ne => x != y,
            CmpOp::Lt => x < y,
            CmpOp::Le => x <= y,
            CmpOp::Gt => x > y,
            CmpOp::Ge => x >= y,
        };
    }
    match op {
        CmpOp::Eq => a == b,
        CmpOp::Ne => a != b,
        CmpOp::Lt => a < b,
        CmpOp::Le => a <= b,
        CmpOp::Gt => a > b,
        CmpOp::Ge => a >= b,
    }
}

/// Instantiate a template under the current bindings, producing the result
/// trees for one binding tuple.
pub fn construct<'a>(
    template: &TemplatePlan,
    ctx: &Ctx<'a>,
    binds: &Binds<'a>,
) -> QueryResult<Vec<Tree>> {
    match template {
        TemplatePlan::Splice(path) => {
            // A bare top-level splice: one tree per item.
            let items = eval_path(path, ctx, binds, None)?;
            Ok(items
                .into_iter()
                .map(|it| match it {
                    // Zero-copy: result trees are views into the input
                    // document's arena (copy-on-write if mutated later).
                    PItem::Node { tree, node } => tree
                        .subtree(node)
                        .expect("path items reference valid nodes"),
                    PItem::Atom(s) => {
                        let mut t = Tree::new("text");
                        let r = t.root();
                        t.add_text(r, s);
                        t
                    }
                })
                .collect())
        }
        TemplatePlan::Text(s) => {
            let mut t = Tree::new("text");
            let r = t.root();
            t.add_text(r, s.clone());
            Ok(vec![t])
        }
        TemplatePlan::Element { label, .. } => {
            let mut t = Tree::new(*label);
            let root = t.root();
            fill_element(template, &mut t, root, ctx, binds)?;
            Ok(vec![t])
        }
    }
}

/// Fill `at` (already created with the element's label) from the template.
fn fill_element<'a>(
    template: &TemplatePlan,
    t: &mut Tree,
    at: NodeId,
    ctx: &Ctx<'a>,
    binds: &Binds<'a>,
) -> QueryResult<()> {
    let TemplatePlan::Element {
        attrs, children, ..
    } = template
    else {
        return Err(QueryError::Internal("fill_element on non-element".into()));
    };
    for (name, v) in attrs {
        let value = match v {
            AttrTplPlan::Literal(s) => s.clone(),
            AttrTplPlan::Splice(p) => {
                let atoms: Vec<String> = eval_path(p, ctx, binds, None)?
                    .iter()
                    .map(PItem::atomize)
                    .collect();
                atoms.join(" ")
            }
        };
        t.set_attr(at, *name, value)
            .map_err(|e| QueryError::Internal(e.to_string()))?;
    }
    for c in children {
        match c {
            TemplatePlan::Text(s) => {
                t.add_text(at, s.clone());
            }
            TemplatePlan::Element { label, .. } => {
                let el = t.add_element(at, *label);
                fill_element(c, t, el, ctx, binds)?;
            }
            TemplatePlan::Splice(p) => {
                for it in eval_path(p, ctx, binds, None)? {
                    match it {
                        PItem::Node { tree, node } => {
                            t.graft(at, tree, node)
                                .map_err(|e| QueryError::Internal(e.to_string()))?;
                        }
                        PItem::Atom(s) => {
                            t.add_text(at, s);
                        }
                    }
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower;
    use crate::parser::parse_query;

    fn run(src: &str, inputs: &[Forest]) -> Vec<String> {
        let plan = lower(&parse_query(src).unwrap(), inputs.len()).unwrap();
        plan.eval(inputs, &NoDocs)
            .unwrap()
            .iter()
            .map(Tree::serialize)
            .collect()
    }

    fn catalog() -> Tree {
        Tree::parse(
            r#"<catalog>
                 <pkg name="vim"><version>9.1</version><size>4000</size></pkg>
                 <pkg name="gcc"><version>13</version><size>90000</size>
                   <deps><dep>glibc</dep><dep>binutils</dep></deps></pkg>
                 <pkg name="vi"><version>1.0</version><size>100</size></pkg>
               </catalog>"#,
        )
        .unwrap()
    }

    #[test]
    fn bare_path_copies_matches() {
        let out = run("$0//dep", &[vec![catalog()]]);
        assert_eq!(out, ["<dep>glibc</dep>", "<dep>binutils</dep>"]);
    }

    #[test]
    fn attribute_filter() {
        let out = run(
            r#"for $p in $0//pkg where $p/@name = "vim" return <hit>{$p/version}</hit>"#,
            &[vec![catalog()]],
        );
        assert_eq!(out, ["<hit><version>9.1</version></hit>"]);
    }

    #[test]
    fn numeric_comparison() {
        let out = run(
            r#"for $p in $0//pkg where $p/size/text() > 3000 return {$p/@name}"#,
            &[vec![catalog()]],
        );
        // atoms wrap as <text> trees
        assert_eq!(out, ["<text>vim</text>", "<text>gcc</text>"]);
    }

    #[test]
    fn string_comparison_fallback() {
        // "vi" < "vim" lexicographically
        let out = run(
            r#"for $p in $0//pkg where $p/@name < "vim" return {$p/@name}"#,
            &[vec![catalog()]],
        );
        assert_eq!(out, ["<text>gcc</text>", "<text>vi</text>"]);
    }

    #[test]
    fn contains_and_predicates_in_path() {
        let out = run(
            r#"for $p in $0//pkg[deps/dep = "glibc"] return {$p/@name}"#,
            &[vec![catalog()]],
        );
        assert_eq!(out, ["<text>gcc</text>"]);
        let out2 = run(
            r#"for $p in $0//pkg where contains($p/@name, "vi") return {$p/@name}"#,
            &[vec![catalog()]],
        );
        assert_eq!(out2, ["<text>vim</text>", "<text>vi</text>"]);
    }

    #[test]
    fn construction_with_attrs() {
        let out = run(
            r#"for $p in $0//pkg where exists($p/deps) return <needs name="{$p/@name}" n="fixed">{$p/deps/dep}</needs>"#,
            &[vec![catalog()]],
        );
        assert_eq!(
            out,
            [r#"<needs name="gcc" n="fixed"><dep>glibc</dep><dep>binutils</dep></needs>"#]
        );
    }

    #[test]
    fn join_across_inputs() {
        let prices =
            Tree::parse(r#"<prices><price pkg="vim">10</price><price pkg="vi">2</price></prices>"#)
                .unwrap();
        let out = run(
            r#"for $p in $0//pkg for $r in $1//price where $p/@name = $r/@pkg
               return <quote name="{$p/@name}">{$r/text()}</quote>"#,
            &[vec![catalog()], vec![prices]],
        );
        assert_eq!(
            out,
            [
                r#"<quote name="vim">10</quote>"#,
                r#"<quote name="vi">2</quote>"#
            ]
        );
    }

    #[test]
    fn let_binds_sequences() {
        let out = run(
            r#"let $deps := $0//dep where exists($deps) return <all>{$deps}</all>"#,
            &[vec![catalog()]],
        );
        assert_eq!(out, ["<all><dep>glibc</dep><dep>binutils</dep></all>"]);
    }

    #[test]
    fn forest_inputs_iterate_roots() {
        let t1 = Tree::parse("<u><a>1</a></u>").unwrap();
        let t2 = Tree::parse("<u><a>2</a></u>").unwrap();
        let out = run(
            "for $u in $0 return <got>{$u/a/text()}</got>",
            &[vec![t1, t2]],
        );
        assert_eq!(out, ["<got>1</got>", "<got>2</got>"]);
    }

    #[test]
    fn doc_resolution() {
        let mut docs = std::collections::HashMap::new();
        docs.insert(DocName::new("cat"), catalog());
        let plan = lower(
            &parse_query(r#"for $d in doc("cat")//dep return {$d}"#).unwrap(),
            0,
        )
        .unwrap();
        let out = plan.eval(&[], &docs).unwrap();
        assert_eq!(out.len(), 2);
        // and unresolved docs error
        let e = plan.eval(&[], &NoDocs).unwrap_err();
        assert!(matches!(e, QueryError::UnresolvedDoc(_)));
    }

    #[test]
    fn text_steps() {
        let t = Tree::parse("<r><a>x<b>y</b></a></r>").unwrap();
        // /text() → string value of the node
        let out = run(
            "for $a in $0/a return <v>{$a/text()}</v>",
            &[vec![t.clone()]],
        );
        assert_eq!(out, ["<v>xy</v>"]);
        // //text() → each text leaf separately
        let out2 = run("for $a in $0/a return <v>{$a//text()}</v>", &[vec![t]]);
        assert_eq!(out2, ["<v>xy</v>"]);
    }

    #[test]
    fn descendant_attr_collects() {
        let out = run("$0//pkg/@name", &[vec![catalog()]]);
        assert_eq!(
            out,
            ["<text>vim</text>", "<text>gcc</text>", "<text>vi</text>"]
        );
    }

    #[test]
    fn empty_result() {
        let out = run(
            r#"for $p in $0//pkg where $p/@name = "nonexistent" return {$p}"#,
            &[vec![catalog()]],
        );
        assert!(out.is_empty());
    }

    #[test]
    fn arity_checked() {
        let plan = lower(&parse_query("$1/x").unwrap(), 0).unwrap();
        let e = plan.eval(&[], &NoDocs).unwrap_err();
        assert!(matches!(e, QueryError::ArityMismatch { .. }));
    }

    #[test]
    fn wildcard_steps() {
        let out = run("for $x in $0/* return {$x/@name}", &[vec![catalog()]]);
        assert_eq!(out.len(), 3);
        let out2 = run("$0//pkg/*", &[vec![catalog()]]);
        // version+size ×3 plus deps
        assert_eq!(out2.len(), 7);
    }

    #[test]
    fn not_and_or() {
        let out = run(
            r#"for $p in $0//pkg where not(exists($p/deps)) and ($p/@name = "vi" or $p/@name = "vim") return {$p/@name}"#,
            &[vec![catalog()]],
        );
        assert_eq!(out, ["<text>vim</text>", "<text>vi</text>"]);
    }
}

#[cfg(test)]
mod count_tests {
    use super::*;
    use crate::lower::lower;
    use crate::parser::parse_query;

    fn run(src: &str, inputs: &[Forest]) -> Vec<String> {
        let plan = lower(&parse_query(src).unwrap(), inputs.len()).unwrap();
        plan.eval(inputs, &NoDocs)
            .unwrap()
            .iter()
            .map(Tree::serialize)
            .collect()
    }

    fn catalog() -> Tree {
        Tree::parse(
            r#"<catalog>
                 <pkg name="gcc"><deps><dep>a</dep><dep>b</dep><dep>c</dep></deps></pkg>
                 <pkg name="vim"><deps><dep>a</dep></deps></pkg>
                 <pkg name="sed"/>
               </catalog>"#,
        )
        .unwrap()
    }

    #[test]
    fn count_in_where_clause() {
        let out = run(
            r#"for $p in $0//pkg where count($p/deps/dep) >= 2 return {$p/@name}"#,
            &[vec![catalog()]],
        );
        assert_eq!(out, ["<text>gcc</text>"]);
    }

    #[test]
    fn count_zero_matches() {
        let out = run(
            r#"for $p in $0//pkg where count($p/deps/dep) = 0 return {$p/@name}"#,
            &[vec![catalog()]],
        );
        assert_eq!(out, ["<text>sed</text>"]);
    }

    #[test]
    fn count_in_path_predicate() {
        let out = run(r#"$0//pkg[count(deps/dep) = 1]/@name"#, &[vec![catalog()]]);
        assert_eq!(out, ["<text>vim</text>"]);
    }

    #[test]
    fn count_display_roundtrip() {
        let src = r#"for $p in $0//pkg where count($p/deps/dep) > 1 return {$p}"#;
        let body = parse_query(src).unwrap();
        let rendered = body.to_string();
        assert_eq!(parse_query(&rendered).unwrap(), body, "{rendered}");
    }

    #[test]
    fn count_rejects_non_integer_bound() {
        assert!(parse_query(r#"for $p in $0 where count($p/x) > 1.5 return {$p}"#).is_err());
        assert!(parse_query(r#"for $p in $0 where count($p/x) ~ 1 return {$p}"#).is_err());
    }
}
