//! Continuous (incremental) query evaluation.
//!
//! The paper makes every service and query continuous (§2.2): inputs are
//! streams of trees accumulating under nodes, and definition (2) *"captures
//! the intuitive semantics of continuous incremental query evaluation:
//! eval@p(q) produces a result whenever the arrival of some new tree in the
//! input streams leads to creating some output"*.
//!
//! [`ContinuousEval`] implements exactly that contract: feed it one arrived
//! tree at a time with [`ContinuousEval::push`], get back the *new* result
//! trees. Two strategies are used:
//!
//! * **semi-naive** — when exactly one `ForEach` scans the touched
//!   parameter and nothing else references it, the new results are
//!   obtained by evaluating with that parameter bound to just the new
//!   tree: O(|delta|) instead of O(|state|);
//! * **difference** — otherwise (joins of a stream with itself, `let`
//!   over the stream, predicates reading the stream), results are the
//!   canonical-multiset difference `eval(state ∪ {t}) ∖ eval(state)`.
//!
//! Both agree with batch re-evaluation for monotone queries (property
//! tested); for non-monotone queries the continuous evaluator emits
//! additions only (AXML streams are append-only — answers are never
//! retracted, per §2.2's accumulate-as-siblings semantics).

use crate::error::QueryResult;
use crate::eval::{Ctx, DocResolver, Forest};
use crate::plan::{Op, Plan, SourceRef, StartRef};
use axml_xml::equiv::{canonicalize, Canon};
use axml_xml::tree::Tree;
use std::collections::HashMap;

/// Strategy chosen for one input parameter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeltaStrategy {
    /// Evaluate with the parameter restricted to the new tree.
    SemiNaive,
    /// Full evaluation + canonical multiset difference.
    Difference,
}

/// An incrementally-evaluated continuous query instance.
pub struct ContinuousEval<'d> {
    plan: Plan,
    docs: &'d dyn DocResolver,
    state: Vec<Forest>,
    strategies: Vec<DeltaStrategy>,
    /// Canonical forms of everything emitted so far (used by the
    /// difference strategy).
    emitted: HashMap<Canon, usize>,
    emitted_count: usize,
}

impl<'d> ContinuousEval<'d> {
    /// Set up a continuous evaluation of `plan`.
    pub fn new(plan: Plan, docs: &'d dyn DocResolver) -> Self {
        let strategies = (0..plan.arity)
            .map(|i| Self::pick_strategy(&plan, i))
            .collect();
        let state = vec![Vec::new(); plan.arity];
        ContinuousEval {
            plan,
            docs,
            state,
            strategies,
            emitted: HashMap::new(),
            emitted_count: 0,
        }
    }

    fn pick_strategy(plan: &Plan, param: usize) -> DeltaStrategy {
        // Semi-naive requires: exactly one ForEach whose path *starts* at
        // the parameter, and no other reference to the parameter anywhere
        // (other scans, let-binds, nested predicates, the template).
        let direct_scans = {
            let mut n = 0;
            let mut cur = Some(&plan.ops);
            while let Some(op) = cur {
                match op {
                    Op::ForEach { path, .. }
                        if path.start == StartRef::Source(SourceRef::Param(param)) =>
                    {
                        n += 1
                    }
                    Op::LetBind { path, .. }
                        if path.start == StartRef::Source(SourceRef::Param(param)) =>
                    {
                        // let over the stream is not decomposable per-tree
                        return DeltaStrategy::Difference;
                    }
                    _ => {}
                }
                cur = op.input();
            }
            n
        };
        if direct_scans != 1 {
            return DeltaStrategy::Difference;
        }
        // Count *all* references; the single scan accounts for exactly one.
        let mut refs = 0;
        plan.ops.for_each_path(&mut |p| {
            if p.references_param(param) {
                refs += 1;
            }
        });
        if refs != 1 || plan.template.references_param(param) {
            return DeltaStrategy::Difference;
        }
        DeltaStrategy::SemiNaive
    }

    /// The strategy used for a parameter.
    pub fn strategy(&self, param: usize) -> DeltaStrategy {
        self.strategies[param]
    }

    /// The accumulated state of one input stream.
    pub fn state(&self, param: usize) -> &[Tree] {
        &self.state[param]
    }

    /// Number of result trees emitted so far.
    pub fn emitted_len(&self) -> usize {
        self.emitted_count
    }

    /// A new tree arrived on input `param`; returns the new results.
    pub fn push(&mut self, param: usize, tree: Tree) -> QueryResult<Vec<Tree>> {
        assert!(param < self.plan.arity, "parameter out of range");
        let out = match self.strategies[param] {
            DeltaStrategy::SemiNaive => {
                let delta = [tree.clone()];
                let ctx = Ctx::with_override(&self.state, self.docs, param, &delta);
                self.plan.eval_ctx(&ctx)?
            }
            DeltaStrategy::Difference => {
                self.state[param].push(tree.clone());
                let after = self.plan.eval(&self.state, self.docs)?;
                self.state[param].pop();
                // multiset difference vs everything already emitted
                let mut fresh = Vec::new();
                let mut budget: HashMap<Canon, usize> = self.emitted.clone();
                for t in after {
                    let c = canonicalize(&t, t.root());
                    match budget.get_mut(&c) {
                        Some(n) if *n > 0 => *n -= 1,
                        _ => fresh.push(t),
                    }
                }
                fresh
            }
        };
        self.state[param].push(tree);
        for t in &out {
            *self.emitted.entry(canonicalize(t, t.root())).or_insert(0) += 1;
        }
        self.emitted_count += out.len();
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::NoDocs;
    use crate::lower::lower;
    use crate::parser::parse_query;
    use axml_xml::equiv::forest_equiv;

    fn plan(src: &str, arity: usize) -> Plan {
        lower(&parse_query(src).unwrap(), arity).unwrap()
    }

    fn pkg(name: &str, size: u32) -> Tree {
        Tree::parse(&format!(
            r#"<u><pkg name="{name}"><size>{size}</size></pkg></u>"#
        ))
        .unwrap()
    }

    #[test]
    fn semi_naive_selected_for_single_scan() {
        let p = plan(
            r#"for $p in $0//pkg where $p/size/text() > 1000 return {$p/@name}"#,
            1,
        );
        let c = ContinuousEval::new(p, &NoDocs);
        assert_eq!(c.strategy(0), DeltaStrategy::SemiNaive);
    }

    #[test]
    fn difference_selected_for_self_join() {
        let p = plan(
            r#"for $a in $0//pkg for $b in $0//pkg where $a/@name = $b/@name return <m/>"#,
            1,
        );
        let c = ContinuousEval::new(p, &NoDocs);
        assert_eq!(c.strategy(0), DeltaStrategy::Difference);
    }

    #[test]
    fn difference_selected_for_let() {
        let p = plan(
            "let $all := $0//pkg where exists($all) return <n>{$all}</n>",
            1,
        );
        let c = ContinuousEval::new(p, &NoDocs);
        assert_eq!(c.strategy(0), DeltaStrategy::Difference);
    }

    #[test]
    fn incremental_matches_batch_single_scan() {
        let p = plan(
            r#"for $p in $0//pkg where $p/size/text() > 1000 return {$p/@name}"#,
            1,
        );
        let stream = [pkg("a", 10), pkg("b", 5000), pkg("c", 2000), pkg("d", 1)];
        let mut cont = ContinuousEval::new(p.clone(), &NoDocs);
        let mut all = Vec::new();
        for t in &stream {
            all.extend(cont.push(0, t.clone()).unwrap());
        }
        let batch = p.eval(&[stream.to_vec()], &NoDocs).unwrap();
        assert!(forest_equiv(&all, &batch));
        assert_eq!(cont.emitted_len(), batch.len());
        assert_eq!(cont.state(0).len(), 4);
    }

    #[test]
    fn incremental_matches_batch_self_join() {
        let p = plan(
            r#"for $a in $0//pkg for $b in $0//pkg where $a/size/text() < $b/size/text()
               return <lt a="{$a/@name}" b="{$b/@name}"/>"#,
            1,
        );
        let stream = [pkg("a", 10), pkg("b", 5000), pkg("c", 200)];
        let mut cont = ContinuousEval::new(p.clone(), &NoDocs);
        let mut all = Vec::new();
        for t in &stream {
            all.extend(cont.push(0, t.clone()).unwrap());
        }
        let batch = p.eval(&[stream.to_vec()], &NoDocs).unwrap();
        assert!(forest_equiv(&all, &batch));
    }

    #[test]
    fn two_stream_join_incremental() {
        let p = plan(
            r#"for $a in $0//pkg for $r in $1//price where $a/@name = $r/@pkg
               return <q n="{$a/@name}">{$r/text()}</q>"#,
            2,
        );
        let mut cont = ContinuousEval::new(p.clone(), &NoDocs);
        let mut all = Vec::new();
        let price = |n: &str, v: u32| {
            Tree::parse(&format!(r#"<ps><price pkg="{n}">{v}</price></ps>"#)).unwrap()
        };
        all.extend(cont.push(0, pkg("vim", 10)).unwrap());
        assert!(all.is_empty(), "no prices yet");
        all.extend(cont.push(1, price("vim", 42)).unwrap());
        assert_eq!(all.len(), 1);
        all.extend(cont.push(0, pkg("gcc", 20)).unwrap());
        all.extend(cont.push(1, price("gcc", 7)).unwrap());
        assert_eq!(all.len(), 2);
        let batch = p
            .eval(
                &[
                    vec![pkg("vim", 10), pkg("gcc", 20)],
                    vec![price("vim", 42), price("gcc", 7)],
                ],
                &NoDocs,
            )
            .unwrap();
        assert!(forest_equiv(&all, &batch));
    }

    #[test]
    fn duplicate_results_preserved_as_multiset() {
        // Each pushed tree yields an identical <hit/>; the difference
        // strategy must not swallow duplicates.
        let p = plan(
            r#"for $a in $0//pkg for $b in $0//pkg where $a/@name = $b/@name return <hit/>"#,
            1,
        );
        let mut cont = ContinuousEval::new(p, &NoDocs);
        assert_eq!(cont.strategy(0), DeltaStrategy::Difference);
        let a = cont.push(0, pkg("x", 1)).unwrap();
        assert_eq!(a.len(), 1);
        let b = cont.push(0, pkg("y", 1)).unwrap();
        assert_eq!(b.len(), 1, "second identical <hit/> must still appear");
    }
}
