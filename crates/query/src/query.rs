//! The top-level [`Query`] object: a named, declaratively-defined,
//! shippable query.
//!
//! §2.2: declarative services are implemented by *"declarative XML query
//! statements, possibly parameterized"* whose definitions are **visible to
//! other peers**. A [`Query`] therefore carries its own definition and can
//! be serialized to an XML tree ([`Query::to_xml`]) — this is what crosses
//! the wire when the algebra ships code (`send(p2, q@p1)`, definition (8)).
//!
//! A query is either a *leaf* (parsed source + compiled plan) or a
//! *composition* `q1(q2, …, qn)` (§3.3, rule (11)): the inner queries all
//! consume the composition's inputs, and the outer query consumes their
//! results.

use crate::ast::QueryBody;
use crate::delta::ContinuousEval;
use crate::error::{QueryError, QueryResult};
use crate::eval::{DocResolver, Forest, NoDocs};
use crate::lower::lower;
use crate::parser::parse_query;
use crate::plan::Plan;
use crate::rewrite;
use axml_xml::ids::QueryName;
use axml_xml::tree::Tree;
use std::fmt;
use std::sync::Arc;

/// A named query: the unit the algebra ships, delegates and composes.
#[derive(Clone)]
pub struct Query {
    name: QueryName,
    arity: usize,
    kind: Arc<QueryKind>,
}

#[allow(clippy::large_enum_variant)] // Leaf is by far the common case
enum QueryKind {
    Leaf {
        source: String,
        #[allow(dead_code)]
        body: QueryBody,
        plan: Plan,
    },
    Composed {
        outer: Query,
        inners: Vec<Query>,
    },
}

impl Query {
    /// Parse a query from source text. The arity is the number of
    /// parameters actually referenced (`$0 … $N`).
    pub fn parse(name: impl Into<QueryName>, src: &str) -> QueryResult<Self> {
        Self::parse_with_arity(name, src, 0)
    }

    /// Parse with a minimum arity (for services whose signature declares
    /// more parameters than the body reads).
    pub fn parse_with_arity(
        name: impl Into<QueryName>,
        src: &str,
        min_arity: usize,
    ) -> QueryResult<Self> {
        let body = parse_query(src)?;
        let plan = lower(&body, min_arity)?;
        Ok(Query {
            name: name.into(),
            arity: plan.arity,
            kind: Arc::new(QueryKind::Leaf {
                source: src.to_string(),
                body,
                plan,
            }),
        })
    }

    /// Build a query directly from a plan (used by rewrites). The source
    /// text is regenerated best-effort for display.
    pub fn from_plan(name: impl Into<QueryName>, plan: Plan) -> Self {
        Query {
            name: name.into(),
            arity: plan.arity,
            kind: Arc::new(QueryKind::Leaf {
                source: format!("<compiled>\n{plan}"),
                body: QueryBody::Bare(crate::ast::Path::start_only(crate::ast::PathStart::Param(
                    0,
                ))),
                plan,
            }),
        }
    }

    /// Compose `outer(inners…)` — rule (11). The outer query's arity must
    /// equal the number of inner queries; all inner queries must agree on
    /// their own arity, which becomes the composition's arity.
    pub fn compose(
        name: impl Into<QueryName>,
        outer: Query,
        inners: Vec<Query>,
    ) -> QueryResult<Self> {
        if outer.arity() != inners.len() {
            return Err(QueryError::ArityMismatch {
                expected: outer.arity(),
                got: inners.len(),
            });
        }
        let arity = inners.iter().map(Query::arity).max().unwrap_or(0);
        Ok(Query {
            name: name.into(),
            arity,
            kind: Arc::new(QueryKind::Composed { outer, inners }),
        })
    }

    /// The query's name.
    pub fn name(&self) -> &QueryName {
        &self.name
    }

    /// Number of input parameters.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Is this a composition?
    pub fn is_composed(&self) -> bool {
        matches!(&*self.kind, QueryKind::Composed { .. })
    }

    /// The compiled plan of a leaf query.
    pub fn plan(&self) -> Option<&Plan> {
        match &*self.kind {
            QueryKind::Leaf { plan, .. } => Some(plan),
            QueryKind::Composed { .. } => None,
        }
    }

    /// The outer/inner structure of a composition.
    pub fn composition(&self) -> Option<(&Query, &[Query])> {
        match &*self.kind {
            QueryKind::Composed { outer, inners } => Some((outer, inners)),
            QueryKind::Leaf { .. } => None,
        }
    }

    /// Names of all `doc("…")` sources the query reads, across leaves and
    /// compositions — the documents whose changes can change the query's
    /// answer (used by the continuous-service trigger logic).
    pub fn doc_dependencies(&self) -> Vec<axml_xml::ids::DocName> {
        use crate::plan::{SourceRef, StartRef};
        let mut out: Vec<axml_xml::ids::DocName> = Vec::new();
        let mut add_from_plan = |plan: &Plan| {
            let mut record = |p: &crate::plan::PathPlan| {
                if let StartRef::Source(SourceRef::Doc(d)) = &p.start {
                    if !out.contains(d) {
                        out.push(d.clone());
                    }
                }
            };
            plan.ops.for_each_path(&mut record);
            let mut probe = plan.clone();
            crate::rewrite::map_paths(&mut probe, &mut |p| record(p));
        };
        match &*self.kind {
            QueryKind::Leaf { plan, .. } => add_from_plan(plan),
            QueryKind::Composed { outer, inners } => {
                for d in outer.doc_dependencies() {
                    if !out.contains(&d) {
                        out.push(d);
                    }
                }
                for q in inners {
                    for d in q.doc_dependencies() {
                        if !out.contains(&d) {
                            out.push(d);
                        }
                    }
                }
            }
        }
        out
    }

    /// The source text of a leaf query.
    pub fn source(&self) -> Option<&str> {
        match &*self.kind {
            QueryKind::Leaf { source, .. } => Some(source),
            QueryKind::Composed { .. } => None,
        }
    }

    /// Evaluate over input forests with no external documents.
    pub fn eval_batch(&self, inputs: &[Forest]) -> QueryResult<Vec<Tree>> {
        self.eval_with_docs(inputs, &NoDocs)
    }

    /// Evaluate over input forests, resolving `doc(…)` via `docs`.
    pub fn eval_with_docs(
        &self,
        inputs: &[Forest],
        docs: &dyn DocResolver,
    ) -> QueryResult<Vec<Tree>> {
        match &*self.kind {
            QueryKind::Leaf { plan, .. } => plan.eval(inputs, docs),
            QueryKind::Composed { outer, inners } => {
                let mid: Vec<Forest> = inners
                    .iter()
                    .map(|q| q.eval_with_docs(inputs, docs))
                    .collect::<QueryResult<_>>()?;
                outer.eval_with_docs(&mid, docs)
            }
        }
    }

    /// Start a continuous (incremental) evaluation of a **leaf** query.
    pub fn continuous<'d>(&self, docs: &'d dyn DocResolver) -> QueryResult<ContinuousEval<'d>> {
        match &*self.kind {
            QueryKind::Leaf { plan, .. } => Ok(ContinuousEval::new(plan.clone(), docs)),
            QueryKind::Composed { .. } => Err(QueryError::NotApplicable(
                "continuous evaluation of compositions: evaluate stage by stage".into(),
            )),
        }
    }

    /// Example 1 — decompose into `(outer, pushed)` with
    /// `self ≡ outer ∘ pushed`, where `pushed` carries the selections.
    pub fn decompose_selection(&self) -> Option<(Query, Query)> {
        let plan = self.plan()?;
        let (outer, pushed) = rewrite::decompose_selection(plan)?;
        Some((
            Query::from_plan(format!("{}·outer", self.name).as_str(), outer),
            Query::from_plan(format!("{}·pushed", self.name).as_str(), pushed),
        ))
    }

    /// Local optimization: fold a `where` clause into a path predicate.
    pub fn push_filter_into_path(&self) -> Option<Query> {
        let plan = self.plan()?;
        let folded = rewrite::push_filter_into_path(plan)?;
        Some(Query::from_plan(self.name.as_str(), folded))
    }

    // ---------------- wire format -------------------------------------

    /// Serialize the query (definition included) as an XML tree — §3.1:
    /// *"An expression can be viewed (serialized) as an XML tree."*
    pub fn to_xml(&self) -> Tree {
        let mut t = Tree::new("query");
        let root = t.root();
        self.write_xml(&mut t, root);
        t
    }

    fn write_xml(&self, t: &mut Tree, at: axml_xml::tree::NodeId) {
        t.set_attr(at, "name", self.name.as_str())
            .expect("query elements are elements");
        t.set_attr(at, "arity", self.arity.to_string())
            .expect("query elements are elements");
        match &*self.kind {
            QueryKind::Leaf { source, .. } => {
                t.add_text_element(at, "source", source.clone());
            }
            QueryKind::Composed { outer, inners } => {
                let comp = t.add_element(at, "compose");
                let o = t.add_element(comp, "query");
                outer.write_xml(t, o);
                for q in inners {
                    let i = t.add_element(comp, "query");
                    q.write_xml(t, i);
                }
            }
        }
    }

    /// Rebuild a query from its XML serialization.
    pub fn from_xml(tree: &Tree, node: axml_xml::tree::NodeId) -> QueryResult<Query> {
        let name = tree
            .attr(node, "name")
            .ok_or_else(|| QueryError::Internal("query element lacks @name".into()))?
            .to_string();
        let arity: usize = tree
            .attr(node, "arity")
            .and_then(|a| a.parse().ok())
            .ok_or_else(|| QueryError::Internal("query element lacks @arity".into()))?;
        if let Some(src_el) = tree.first_child_labeled(node, "source") {
            let src = tree.text(src_el);
            return Query::parse_with_arity(name.as_str(), &src, arity);
        }
        if let Some(comp) = tree.first_child_labeled(node, "compose") {
            let parts: Vec<_> = tree.children_labeled(comp, "query").collect();
            if parts.is_empty() {
                return Err(QueryError::Internal("empty composition".into()));
            }
            let outer = Query::from_xml(tree, parts[0])?;
            let inners = parts[1..]
                .iter()
                .map(|&n| Query::from_xml(tree, n))
                .collect::<QueryResult<Vec<_>>>()?;
            return Query::compose(name.as_str(), outer, inners);
        }
        Err(QueryError::Internal(
            "query element has neither <source> nor <compose>".into(),
        ))
    }

    /// Wire size of the shipped query (definition included) — what the
    /// cost model charges for code shipping (rule (10), definition (8)).
    pub fn wire_size(&self) -> usize {
        self.to_xml().serialized_size()
    }
}

impl PartialEq for Query {
    fn eq(&self, other: &Self) -> bool {
        if self.arity != other.arity {
            return false;
        }
        match (&*self.kind, &*other.kind) {
            (QueryKind::Leaf { plan: a, .. }, QueryKind::Leaf { plan: b, .. }) => a == b,
            (
                QueryKind::Composed {
                    outer: oa,
                    inners: ia,
                },
                QueryKind::Composed {
                    outer: ob,
                    inners: ib,
                },
            ) => oa == ob && ia == ib,
            _ => false,
        }
    }
}

impl Eq for Query {}

impl fmt::Debug for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &*self.kind {
            QueryKind::Leaf { source, .. } => {
                write!(f, "Query({} /{}: {source})", self.name, self.arity)
            }
            QueryKind::Composed { outer, inners } => {
                write!(f, "Query({} = {:?}(", self.name, outer.name)?;
                for (i, q) in inners.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{:?}", q.name)?;
                }
                write!(f, "))")
            }
        }
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.name, self.arity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use axml_xml::equiv::forest_equiv;

    fn catalog() -> Tree {
        Tree::parse(
            r#"<catalog>
                 <pkg name="vim"><size>4000</size></pkg>
                 <pkg name="gcc"><size>90000</size></pkg>
                 <pkg name="vi"><size>100</size></pkg>
               </catalog>"#,
        )
        .unwrap()
    }

    #[test]
    fn parse_and_eval() {
        let q = Query::parse(
            "big",
            r#"for $p in $0//pkg where $p/size/text() > 1000 return {$p/@name}"#,
        )
        .unwrap();
        assert_eq!(q.arity(), 1);
        assert_eq!(q.name().as_str(), "big");
        let out = q.eval_batch(&[vec![catalog()]]).unwrap();
        assert_eq!(out.len(), 2);
        assert!(q.source().unwrap().contains("for $p"));
        assert!(!q.is_composed());
    }

    #[test]
    fn composition_evaluates_stagewise() {
        let inner = Query::parse(
            "sel",
            r#"for $p in $0//pkg where $p/size/text() > 1000 return {$p}"#,
        )
        .unwrap();
        let outer = Query::parse("fmt", "for $t in $0 return <big>{$t/@name}</big>").unwrap();
        let q = Query::compose("pipeline", outer, vec![inner]).unwrap();
        assert!(q.is_composed());
        assert_eq!(q.arity(), 1);
        let out = q.eval_batch(&[vec![catalog()]]).unwrap();
        let rendered: Vec<_> = out.iter().map(Tree::serialize).collect();
        assert_eq!(rendered, ["<big>vim</big>", "<big>gcc</big>"]);
    }

    #[test]
    fn compose_checks_arity() {
        let unary = Query::parse("u", "for $t in $0 return {$t}").unwrap();
        let e = Query::compose("bad", unary.clone(), vec![unary.clone(), unary]).unwrap_err();
        assert!(matches!(e, QueryError::ArityMismatch { .. }));
    }

    #[test]
    fn decompose_equivalence_rule11() {
        let q = Query::parse(
            "q",
            r#"for $p in $0//pkg where $p/size/text() > 1000 return <big>{$p/@name}</big>"#,
        )
        .unwrap();
        let (outer, pushed) = q.decompose_selection().unwrap();
        let composed = Query::compose("q'", outer, vec![pushed]).unwrap();
        let a = q.eval_batch(&[vec![catalog()]]).unwrap();
        let b = composed.eval_batch(&[vec![catalog()]]).unwrap();
        assert!(forest_equiv(&a, &b));
    }

    #[test]
    fn xml_roundtrip_leaf() {
        let q = Query::parse(
            "lookup",
            r#"for $p in $0//pkg where $p/@name = "vim" return {$p}"#,
        )
        .unwrap();
        let xml = q.to_xml();
        let back = Query::from_xml(&xml, xml.root()).unwrap();
        assert_eq!(q, back);
        assert!(q.wire_size() > 20);
    }

    #[test]
    fn xml_roundtrip_composed() {
        let inner = Query::parse("i", "for $p in $0//pkg return {$p}").unwrap();
        let outer = Query::parse("o", "for $t in $0 return <w>{$t}</w>").unwrap();
        let q = Query::compose("c", outer, vec![inner]).unwrap();
        let xml = q.to_xml();
        let back = Query::from_xml(&xml, xml.root()).unwrap();
        assert_eq!(q, back);
        let a = q.eval_batch(&[vec![catalog()]]).unwrap();
        let b = back.eval_batch(&[vec![catalog()]]).unwrap();
        assert!(forest_equiv(&a, &b));
    }

    #[test]
    fn from_xml_rejects_garbage() {
        let t = Tree::parse("<query/>").unwrap();
        assert!(Query::from_xml(&t, t.root()).is_err());
        let t2 = Tree::parse(r#"<query name="q" arity="0"/>"#).unwrap();
        assert!(Query::from_xml(&t2, t2.root()).is_err());
    }

    #[test]
    fn continuous_from_query() {
        let q = Query::parse("watch", "for $p in $0//pkg return {$p/@name}").unwrap();
        let mut c = q.continuous(&NoDocs).unwrap();
        let out = c.push(0, catalog()).unwrap();
        assert_eq!(out.len(), 3);
        // compositions refuse
        let comp = Query::compose(
            "c",
            Query::parse("o", "for $t in $0 return {$t}").unwrap(),
            vec![q],
        )
        .unwrap();
        assert!(comp.continuous(&NoDocs).is_err());
    }

    #[test]
    fn display_and_debug() {
        let q = Query::parse("q", "$0//pkg").unwrap();
        assert_eq!(q.to_string(), "q/1");
        assert!(format!("{q:?}").contains("$0//pkg"));
    }

    #[test]
    fn push_filter_query_api() {
        let q = Query::parse(
            "q",
            r#"for $p in $0//pkg where $p/size/text() > 1000 return {$p}"#,
        )
        .unwrap();
        let folded = q.push_filter_into_path().unwrap();
        let a = q.eval_batch(&[vec![catalog()]]).unwrap();
        let b = folded.eval_batch(&[vec![catalog()]]).unwrap();
        assert!(forest_equiv(&a, &b));
    }
}
