//! Shared subscription matching — a YFilter-style NFA over interned
//! labels that decides, for one document delta, *which* registered
//! queries could possibly gain new results.
//!
//! ## The problem
//!
//! A continuous system with `n` live subscriptions over one source
//! document pays `n` full query evaluations per [`feed`] — per-delta cost
//! linear in the subscription count. But most subscriptions are
//! *selective*: a delta tagged `topic="db"` cannot change the answer of a
//! query filtering on `topic="ai"`. The classic fix (YFilter, and the
//! deployed query networks in DXQ) is to compile every subscription's
//! tree patterns into **one** automaton, probe it once per delta, and
//! re-evaluate only the subscriptions it reports.
//!
//! [`feed`]: https://docs.rs/axml-core (AxmlSystem::feed)
//!
//! ## Soundness argument
//!
//! `feed` grafts the delta tree `T` as a **new child of the document
//! root** and never mutates existing nodes, and both axes of the plan
//! language ([`Axis::Child`], [`Axis::Descendant`]) navigate strictly
//! downward. Hence a query's result can change only if some doc-rooted
//! path yields *new* items, and every new item — together with its whole
//! match chain below the document root — lies inside `T`. It therefore
//! suffices to collect **every** doc-rooted [`PathPlan`] anywhere in the
//! plan (scan chains, `where` predicates, nested step predicates,
//! construction templates, and every leaf of a composed query) as a
//! pattern, and to report a subscription iff one of its patterns matches
//! somewhere in `T`. This also covers negated and cardinality predicates:
//! flipping them requires a doc-path change, which is itself a pattern
//! hit; results that merely *shrink* deliver nothing fresh either way
//! (delta semantics are append-only).
//!
//! ## What the index stores
//!
//! * **Structural states** — a trie of `(axis, node-test)` transitions
//!   shared across all registered patterns, state 0 being the document
//!   root. Only [`PlanTest::Label`]/[`PlanTest::Wildcard`] appear on
//!   transitions, so states are shared aggressively.
//! * **Accept entries** at each state — the subscription id, whether the
//!   pattern yields the matched node itself or a trailing atom step
//!   (`text()` / `@attr`), and a *residual* of self-contained predicates
//!   re-checked exactly on the delta.
//! * A **value index**: a residual conjunct of shape `@a = "literal"`
//!   (with a non-numeric literal — numeric comparison has coercing
//!   semantics) is lifted out of the residual into a hash lookup keyed by
//!   `(attribute, value)`, so ten thousand subscriptions differing only
//!   in a filter constant cost one hash probe, not ten thousand checks.
//!
//! ## Over-approximation contract (fallbacks)
//!
//! The probe may report a subscription whose answer does not actually
//! change (the engine's delta cache then suppresses the delivery), but it
//! must never stay silent when the answer *does* change. Shapes the index
//! cannot reason about precisely degrade monotonically toward "always
//! report":
//!
//! * a zero-step pattern (bare `doc("d")`) or a query whose analysis
//!   yields no usable pattern at all ⇒ the subscription joins the
//!   *always* set ([`Registration::Fallback`]);
//! * join predicates (referencing two variables), predicates on interior
//!   path steps, and non-self-contained residuals are dropped from the
//!   pattern — structure still gates the probe, the predicate is simply
//!   not used to narrow it;
//! * a mid-path atom test (`…/text()/…`) makes a path statically empty —
//!   it is registered as nothing at all, which is exact, not a fallback.
//!
//! Conversely `where` conjuncts over a single `for`-bound variable *are*
//! folded into that variable's scan pattern (rebased onto the matched
//! node), because a fresh tuple binding the variable to a new item must
//! satisfy them on that item — this is what makes the probe selective on
//! workloads like `for $i in doc("b")/item where $i/@topic = "t7"`.

use crate::ast::{Axis, CmpOp};
use crate::eval::{eval_pred, BindVal, Ctx, NoDocs, PItem};
use crate::plan::{
    AttrTplPlan, Op, OperandPlan, PathPlan, Plan, PlanStep, PlanTest, PredPlan, SourceRef,
    StartRef, TemplatePlan, VarId,
};
use crate::query::Query;
use axml_xml::ids::DocName;
use axml_xml::label::Label;
use axml_xml::tree::{NodeId, NodeKind, Tree};
use std::collections::{BTreeSet, HashMap};

/// Index of a structural state (0 = the document root).
type StateId = usize;

/// What a pattern yields at its accepting state.
#[derive(Debug, Clone, PartialEq, Eq)]
enum AcceptKind {
    /// The matched element itself.
    Node,
    /// A trailing atom-producing step applied to the matched element.
    Atom {
        /// Axis of the trailing step.
        axis: Axis,
        /// Its (terminal) test — `Text` or `Attr`.
        test: PlanTest,
    },
    /// `doc("d")/text()`: the document root's string value grows iff the
    /// delta carries any text.
    RootText,
}

/// One registered pattern endpoint.
#[derive(Debug, Clone)]
struct AcceptEntry {
    sub: u64,
    kind: AcceptKind,
    /// Self-contained predicates re-checked exactly on the candidate.
    residual: Vec<PredPlan>,
}

/// Accept entries at one state, with the `@a = "v"` fast path hoisted
/// into a value-keyed map.
#[derive(Debug, Default)]
struct Accepts {
    eq_attr: HashMap<(Label, String), Vec<AcceptEntry>>,
    scan: Vec<AcceptEntry>,
}

/// One structural state.
#[derive(Debug, Default)]
struct State {
    /// Outgoing structural transitions (node tests only).
    trans: Vec<(Axis, PlanTest, StateId)>,
    accepts: Accepts,
}

/// How a subscription was registered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Registration {
    /// Structural patterns cover the query; the probe gates it.
    Indexed {
        /// Number of accept points installed.
        patterns: usize,
    },
    /// Uncoverable shape: the subscription is reported on every probe.
    Fallback,
}

/// The shared matching index for one source document.
///
/// Register each subscription's [`Query`] once; [`MatchIndex::probe`] a
/// delta tree to get the sorted set of subscription ids whose results may
/// have changed. See the module docs for the soundness contract.
#[derive(Debug)]
pub struct MatchIndex {
    doc: DocName,
    states: Vec<State>,
    /// Subscriptions reported on every probe (uncoverable shapes).
    always: BTreeSet<u64>,
    /// Every registered subscription id.
    registered: BTreeSet<u64>,
}

impl MatchIndex {
    /// An empty index for deltas of the named document.
    pub fn new(doc: DocName) -> Self {
        MatchIndex {
            doc,
            states: vec![State::default()],
            always: BTreeSet::new(),
            registered: BTreeSet::new(),
        }
    }

    /// The document this index covers.
    pub fn doc(&self) -> &DocName {
        &self.doc
    }

    /// Number of structural states (shared across patterns).
    pub fn state_count(&self) -> usize {
        self.states.len()
    }

    /// Number of registered subscriptions.
    pub fn registered_count(&self) -> usize {
        self.registered.len()
    }

    /// Is this subscription registered here?
    pub fn is_registered(&self, id: u64) -> bool {
        self.registered.contains(&id)
    }

    /// Register a subscription's query. Re-registering an id replaces its
    /// previous patterns.
    pub fn register(&mut self, id: u64, query: &Query) -> Registration {
        self.remove(id);
        self.registered.insert(id);
        let mut plans = Vec::new();
        collect_leaf_plans(query, &mut plans);
        let mut added = 0usize;
        for plan in plans {
            self.collect_plan(id, plan, &mut added);
        }
        if self.always.contains(&id) {
            return Registration::Fallback;
        }
        if added == 0 {
            // Safety net: the caller routed this query here because it
            // depends on `doc`, yet analysis installed nothing (e.g. the
            // only doc-rooted path reads a root attribute, which a graft
            // can never change). Degrade to always-report rather than
            // trust the edge-case analysis with a silent subscription.
            self.always.insert(id);
            return Registration::Fallback;
        }
        Registration::Indexed { patterns: added }
    }

    /// Drop a subscription's patterns. Returns whether it was registered.
    /// States are never garbage-collected (they are tiny and shared).
    pub fn remove(&mut self, id: u64) -> bool {
        let was = self.registered.remove(&id);
        self.always.remove(&id);
        if was {
            for st in &mut self.states {
                st.accepts.scan.retain(|e| e.sub != id);
                st.accepts.eq_attr.retain(|_, v| {
                    v.retain(|e| e.sub != id);
                    !v.is_empty()
                });
            }
        }
        was
    }

    /// Probe one delta tree (the tree `feed` grafts under the document
    /// root) and return every subscription whose results may change.
    pub fn probe(&self, delta: &Tree) -> BTreeSet<u64> {
        let mut hits: BTreeSet<u64> = self.always.iter().copied().collect();
        self.root_accepts(delta, &mut hits);
        // The delta root is a new child (hence descendant) of state 0.
        let reached = self.next_states(&[0], &[0], delta, delta.root());
        self.walk(delta, delta.root(), &reached, &[0], &mut hits);
        hits
    }

    // ---- compilation ---------------------------------------------------

    fn collect_plan(&mut self, id: u64, plan: &Plan, added: &mut usize) {
        let folds = fold_map(plan);
        let mut op = &plan.ops;
        loop {
            match op {
                Op::Unit => break,
                Op::ForEach { var, path, input } => {
                    let fold = folds.get(var).map_or(&[][..], |v| v.as_slice());
                    self.add_path(id, path, fold, added);
                    self.add_nested(id, path, added);
                    op = input;
                }
                Op::LetBind { path, input, .. } => {
                    // `let` binds the whole sequence — per-item folding
                    // would be unsound, so no residual from filters.
                    self.add_path(id, path, &[], added);
                    self.add_nested(id, path, added);
                    op = input;
                }
                Op::Filter { pred, input } => {
                    // Absolute doc paths used inside predicates are
                    // themselves change sources.
                    visit_pred_deep(pred, &mut |p| self.add_path(id, p, &[], added));
                    op = input;
                }
            }
        }
        visit_tpl_deep(&plan.template, &mut |p| self.add_path(id, p, &[], added));
    }

    /// Doc-rooted paths hiding inside `path`'s step predicates.
    fn add_nested(&mut self, id: u64, path: &PathPlan, added: &mut usize) {
        for s in &path.steps {
            for pred in &s.preds {
                visit_pred_deep(pred, &mut |p| self.add_path(id, p, &[], added));
            }
        }
    }

    fn add_path(&mut self, id: u64, path: &PathPlan, fold: &[PredPlan], added: &mut usize) {
        match &path.start {
            StartRef::Source(SourceRef::Doc(d)) if *d == self.doc => {}
            _ => return,
        }
        let steps = &path.steps;
        if steps.is_empty() {
            // Bare `doc("d")`: every graft changes the result.
            self.always.insert(id);
            return;
        }
        let n = steps.len();
        // An interior atom-producing step yields atoms, and steps do not
        // apply to atoms: the path is statically empty. Exact, not a
        // fallback — no delta can ever produce items here.
        if steps[..n - 1].iter().any(|s| is_atom_test(&s.test)) {
            return;
        }
        let last = &steps[n - 1];
        match &last.test {
            PlanTest::Label(_) | PlanTest::Wildcard => {
                let state = self.intern_chain(steps);
                let mut residual = self_contained_preds(&last.preds);
                residual.extend(fold.iter().cloned());
                self.push_accept(
                    state,
                    AcceptEntry {
                        sub: id,
                        kind: AcceptKind::Node,
                        residual,
                    },
                    added,
                );
            }
            PlanTest::Text | PlanTest::Attr(_) => {
                let state = self.intern_chain(&steps[..n - 1]);
                let mut residual = self_contained_preds(&last.preds);
                residual.extend(fold.iter().cloned());
                if state == 0 {
                    match (last.axis, &last.test) {
                        // A graft never touches the root's attributes.
                        (Axis::Child, PlanTest::Attr(_)) => {}
                        (Axis::Child, _) => {
                            // The root's string value grows iff the delta
                            // carries text (residual dropped: atoms from
                            // the *concatenated* value are not per-delta).
                            self.push_accept(
                                0,
                                AcceptEntry {
                                    sub: id,
                                    kind: AcceptKind::RootText,
                                    residual: Vec::new(),
                                },
                                added,
                            );
                        }
                        (Axis::Descendant, _) => {
                            self.push_accept(
                                0,
                                AcceptEntry {
                                    sub: id,
                                    kind: AcceptKind::Atom {
                                        axis: last.axis,
                                        test: last.test.clone(),
                                    },
                                    residual,
                                },
                                added,
                            );
                        }
                    }
                } else {
                    self.push_accept(
                        state,
                        AcceptEntry {
                            sub: id,
                            kind: AcceptKind::Atom {
                                axis: last.axis,
                                test: last.test.clone(),
                            },
                            residual,
                        },
                        added,
                    );
                }
            }
        }
    }

    fn push_accept(&mut self, state: StateId, mut e: AcceptEntry, added: &mut usize) {
        *added += 1;
        if matches!(e.kind, AcceptKind::Node) {
            if let Some(key) = split_eq_attr(&mut e.residual) {
                self.states[state]
                    .accepts
                    .eq_attr
                    .entry(key)
                    .or_default()
                    .push(e);
                return;
            }
        }
        self.states[state].accepts.scan.push(e);
    }

    /// Intern the structural chain of `steps` (all node tests), sharing
    /// prefixes with every previously registered pattern.
    fn intern_chain(&mut self, steps: &[PlanStep]) -> StateId {
        let mut cur = 0;
        for s in steps {
            cur = self.intern_edge(cur, s.axis, &s.test);
        }
        cur
    }

    fn intern_edge(&mut self, from: StateId, axis: Axis, test: &PlanTest) -> StateId {
        debug_assert!(!is_atom_test(test), "transitions carry node tests only");
        if let Some(to) = self.states[from]
            .trans
            .iter()
            .find_map(|(a, t, s2)| (*a == axis && t == test).then_some(*s2))
        {
            return to;
        }
        let to = self.states.len();
        self.states.push(State::default());
        self.states[from].trans.push((axis, test.clone(), to));
        to
    }

    // ---- probing -------------------------------------------------------

    /// States reached *at* `node`: child transitions fire from the
    /// parent's reached states, descendant transitions from any ancestor
    /// (the `anc` set, which includes the virtual document root).
    fn next_states(
        &self,
        parent_reached: &[StateId],
        anc: &[StateId],
        t: &Tree,
        node: NodeId,
    ) -> Vec<StateId> {
        let mut out = Vec::new();
        for &s in parent_reached {
            for (axis, test, to) in &self.states[s].trans {
                if *axis == Axis::Child && node_test_matches(test, t, node) && !out.contains(to) {
                    out.push(*to);
                }
            }
        }
        for &s in anc {
            for (axis, test, to) in &self.states[s].trans {
                if *axis == Axis::Descendant
                    && node_test_matches(test, t, node)
                    && !out.contains(to)
                {
                    out.push(*to);
                }
            }
        }
        out
    }

    fn walk(
        &self,
        t: &Tree,
        node: NodeId,
        reached: &[StateId],
        anc: &[StateId],
        hits: &mut BTreeSet<u64>,
    ) {
        if hits.len() == self.registered.len() {
            return; // every registered subscription already reported
        }
        for &s in reached {
            self.state_accepts(s, t, node, hits);
        }
        let children = t.children(node);
        if children.is_empty() {
            return;
        }
        let mut anc2: Vec<StateId> = anc.to_vec();
        for &s in reached {
            if !anc2.contains(&s) {
                anc2.push(s);
            }
        }
        for &c in children {
            if !t.node(c).is_element() {
                continue;
            }
            let r2 = self.next_states(reached, &anc2, t, c);
            self.walk(t, c, &r2, &anc2, hits);
        }
    }

    fn state_accepts(&self, s: StateId, t: &Tree, node: NodeId, hits: &mut BTreeSet<u64>) {
        let acc = &self.states[s].accepts;
        if !acc.eq_attr.is_empty() {
            for (a, v) in t.attrs(node) {
                if let Some(entries) = acc.eq_attr.get(&(*a, v.clone())) {
                    for e in entries {
                        self.try_entry(e, t, node, hits);
                    }
                }
            }
        }
        for e in &acc.scan {
            self.try_entry(e, t, node, hits);
        }
    }

    fn try_entry(&self, e: &AcceptEntry, t: &Tree, node: NodeId, hits: &mut BTreeSet<u64>) {
        if hits.contains(&e.sub) {
            return;
        }
        let fire = match &e.kind {
            AcceptKind::Node => residual_ok(&e.residual, &PItem::Node { tree: t, node }),
            AcceptKind::Atom { axis, test } => atom_items(t, node, *axis, test)
                .into_iter()
                .any(|v| residual_ok(&e.residual, &PItem::Atom(v))),
            AcceptKind::RootText => {
                debug_assert!(false, "RootText accepts live only at state 0");
                true
            }
        };
        if fire {
            hits.insert(e.sub);
        }
    }

    /// Accepts at state 0: patterns whose structural prefix is empty, so
    /// their atoms come from the (virtual) document root itself.
    fn root_accepts(&self, delta: &Tree, hits: &mut BTreeSet<u64>) {
        let acc = &self.states[0].accepts;
        debug_assert!(
            acc.eq_attr.is_empty(),
            "node accepts never land on the root state"
        );
        for e in &acc.scan {
            if hits.contains(&e.sub) {
                continue;
            }
            let fire = match &e.kind {
                AcceptKind::RootText => !delta.text(delta.root()).is_empty(),
                AcceptKind::Atom {
                    axis: Axis::Descendant,
                    test,
                } => {
                    // New atoms of `doc("d")//text()` / `//@a` are exactly
                    // the matching atoms anywhere inside the delta.
                    root_desc_atoms(delta, test)
                        .into_iter()
                        .any(|v| residual_ok(&e.residual, &PItem::Atom(v)))
                }
                _ => {
                    debug_assert!(false, "unexpected accept kind at the root state");
                    true
                }
            };
            if fire {
                hits.insert(e.sub);
            }
        }
    }
}

// ---- pure helpers ------------------------------------------------------

fn is_atom_test(t: &PlanTest) -> bool {
    matches!(t, PlanTest::Text | PlanTest::Attr(_))
}

fn node_test_matches(test: &PlanTest, t: &Tree, node: NodeId) -> bool {
    match test {
        PlanTest::Label(l) => t.label(node) == Some(*l),
        PlanTest::Wildcard => t.node(node).is_element(),
        PlanTest::Text | PlanTest::Attr(_) => false,
    }
}

/// Leaf plans of a query, recursing through compositions (the outer query
/// and every inner one can each read documents directly).
fn collect_leaf_plans<'q>(q: &'q Query, out: &mut Vec<&'q Plan>) {
    if let Some(p) = q.plan() {
        out.push(p);
    }
    if let Some((outer, inners)) = q.composition() {
        collect_leaf_plans(outer, out);
        for i in inners {
            collect_leaf_plans(i, out);
        }
    }
}

/// Visit every path of a predicate, recursing into nested step
/// predicates.
fn visit_pred_deep(pred: &PredPlan, f: &mut impl FnMut(&PathPlan)) {
    match pred {
        PredPlan::And(a, b) | PredPlan::Or(a, b) => {
            visit_pred_deep(a, f);
            visit_pred_deep(b, f);
        }
        PredPlan::Not(c) => visit_pred_deep(c, f),
        PredPlan::Cmp { lhs, rhs, .. } => {
            visit_path_deep(lhs, f);
            if let OperandPlan::Path(p) = rhs {
                visit_path_deep(p, f);
            }
        }
        PredPlan::Contains { path, .. }
        | PredPlan::Exists(path)
        | PredPlan::CountCmp { path, .. } => visit_path_deep(path, f),
    }
}

fn visit_path_deep(p: &PathPlan, f: &mut impl FnMut(&PathPlan)) {
    f(p);
    for s in &p.steps {
        for pred in &s.preds {
            visit_pred_deep(pred, f);
        }
    }
}

fn visit_tpl_deep(tpl: &TemplatePlan, f: &mut impl FnMut(&PathPlan)) {
    match tpl {
        TemplatePlan::Element {
            attrs, children, ..
        } => {
            for (_, a) in attrs {
                if let AttrTplPlan::Splice(p) = a {
                    visit_path_deep(p, f);
                }
            }
            for c in children {
                visit_tpl_deep(c, f);
            }
        }
        TemplatePlan::Text(_) => {}
        TemplatePlan::Splice(p) => visit_path_deep(p, f),
    }
}

/// `where` conjuncts referencing exactly one `for`-bound variable, keyed
/// by that variable and rebased onto the context node.
fn fold_map(plan: &Plan) -> HashMap<VarId, Vec<PredPlan>> {
    let mut for_vars: BTreeSet<VarId> = BTreeSet::new();
    let mut filters: Vec<&PredPlan> = Vec::new();
    let mut op = &plan.ops;
    loop {
        match op {
            Op::Unit => break,
            Op::ForEach { var, input, .. } => {
                for_vars.insert(*var);
                op = input;
            }
            Op::LetBind { input, .. } => op = input,
            Op::Filter { pred, input } => {
                filters.push(pred);
                op = input;
            }
        }
    }
    let mut map: HashMap<VarId, Vec<PredPlan>> = HashMap::new();
    for pred in filters {
        let mut conjuncts = Vec::new();
        split_conjuncts(pred, &mut conjuncts);
        for c in conjuncts {
            if let Some((v, rebased)) = contextualize(c) {
                if for_vars.contains(&v) {
                    map.entry(v).or_default().push(rebased);
                }
            }
        }
    }
    map
}

fn split_conjuncts<'p>(pred: &'p PredPlan, out: &mut Vec<&'p PredPlan>) {
    if let PredPlan::And(a, b) = pred {
        split_conjuncts(a, out);
        split_conjuncts(b, out);
    } else {
        out.push(pred);
    }
}

/// If every outer-level path of `pred` starts at one variable `v` and
/// every nested path is context-relative, return `(v, pred)` with the
/// outer starts rewritten to [`StartRef::Context`]. Join conjuncts and
/// absolute references return `None` (they are dropped from residuals —
/// the structural pattern alone gates those, an over-approximation).
fn contextualize(pred: &PredPlan) -> Option<(VarId, PredPlan)> {
    fn check(pred: &PredPlan, outer: bool, var: &mut Option<VarId>, ok: &mut bool) {
        let on_path = |p: &PathPlan, outer: bool, var: &mut Option<VarId>, ok: &mut bool| {
            if outer {
                match p.start {
                    StartRef::Var(v) => match var {
                        Some(w) if *w != v => *ok = false,
                        _ => *var = Some(v),
                    },
                    _ => *ok = false,
                }
            } else if p.start != StartRef::Context {
                *ok = false;
            }
            for s in &p.steps {
                for pr in &s.preds {
                    check(pr, false, var, ok);
                }
            }
        };
        match pred {
            PredPlan::And(a, b) | PredPlan::Or(a, b) => {
                check(a, outer, var, ok);
                check(b, outer, var, ok);
            }
            PredPlan::Not(c) => check(c, outer, var, ok),
            PredPlan::Cmp { lhs, rhs, .. } => {
                on_path(lhs, outer, var, ok);
                if let OperandPlan::Path(p) = rhs {
                    on_path(p, outer, var, ok);
                }
            }
            PredPlan::Contains { path, .. }
            | PredPlan::Exists(path)
            | PredPlan::CountCmp { path, .. } => on_path(path, outer, var, ok),
        }
    }
    fn rebase(pred: &mut PredPlan) {
        match pred {
            PredPlan::And(a, b) | PredPlan::Or(a, b) => {
                rebase(a);
                rebase(b);
            }
            PredPlan::Not(c) => rebase(c),
            PredPlan::Cmp { lhs, rhs, .. } => {
                lhs.start = StartRef::Context;
                if let OperandPlan::Path(p) = rhs {
                    p.start = StartRef::Context;
                }
            }
            PredPlan::Contains { path, .. }
            | PredPlan::Exists(path)
            | PredPlan::CountCmp { path, .. } => path.start = StartRef::Context,
        }
    }
    let (mut var, mut ok) = (None, true);
    check(pred, true, &mut var, &mut ok);
    let v = var?;
    if !ok {
        return None;
    }
    let mut rebased = pred.clone();
    rebase(&mut rebased);
    Some((v, rebased))
}

/// Is every path of `pred` (at any depth) context-relative? Such
/// predicates can be evaluated exactly on the delta alone.
fn self_contained(pred: &PredPlan) -> bool {
    let mut ok = true;
    visit_pred_deep(pred, &mut |p| ok &= p.start == StartRef::Context);
    ok
}

fn self_contained_preds(preds: &[PredPlan]) -> Vec<PredPlan> {
    preds
        .iter()
        .filter(|p| self_contained(p))
        .cloned()
        .collect()
}

/// Lift the first `@a = "non-numeric literal"` conjunct out of the
/// residual as a value-index key. Numeric literals stay in the scan list
/// because comparison coerces (`"10" = "10.0"` holds numerically).
fn split_eq_attr(residual: &mut Vec<PredPlan>) -> Option<(Label, String)> {
    for i in 0..residual.len() {
        if let PredPlan::Cmp {
            lhs,
            op: CmpOp::Eq,
            rhs: OperandPlan::Literal(v),
        } = &residual[i]
        {
            if v.parse::<f64>().is_err()
                && lhs.start == StartRef::Context
                && lhs.steps.len() == 1
                && lhs.steps[0].axis == Axis::Child
                && lhs.steps[0].preds.is_empty()
            {
                if let PlanTest::Attr(a) = lhs.steps[0].test {
                    let key = (a, v.clone());
                    residual.remove(i);
                    return Some(key);
                }
            }
        }
    }
    None
}

/// Atoms a trailing step yields at `node` — mirrors the evaluator's
/// `apply_step` exactly for the four atom-producing combinations.
fn atom_items(t: &Tree, node: NodeId, axis: Axis, test: &PlanTest) -> Vec<String> {
    match (axis, test) {
        (Axis::Child, PlanTest::Text) => {
            let v = t.text(node);
            if v.is_empty() {
                Vec::new()
            } else {
                vec![v]
            }
        }
        (Axis::Child, PlanTest::Attr(a)) => t
            .attr(node, a.as_str())
            .map(|v| v.to_string())
            .into_iter()
            .collect(),
        (Axis::Descendant, PlanTest::Text) => t
            .descendants(node)
            .filter_map(|d| match t.node(d).kind() {
                NodeKind::Text(s) => Some(s.clone()),
                _ => None,
            })
            .collect(),
        (Axis::Descendant, PlanTest::Attr(a)) => t
            .descendants_with_self(node)
            .filter_map(|d| t.attr(d, a.as_str()).map(str::to_string))
            .collect(),
        _ => Vec::new(),
    }
}

/// Atoms a root-anchored descendant step gains from the delta: every
/// matching atom anywhere in it (the whole delta is new below the root).
fn root_desc_atoms(delta: &Tree, test: &PlanTest) -> Vec<String> {
    match test {
        PlanTest::Text => delta
            .descendants_with_self(delta.root())
            .filter_map(|d| match delta.node(d).kind() {
                NodeKind::Text(s) => Some(s.clone()),
                _ => None,
            })
            .collect(),
        PlanTest::Attr(a) => delta
            .descendants_with_self(delta.root())
            .filter_map(|d| delta.attr(d, a.as_str()).map(str::to_string))
            .collect(),
        _ => Vec::new(),
    }
}

/// Evaluate residual predicates exactly, with the candidate as context.
/// They are self-contained by construction, so evaluation cannot error;
/// if it somehow does, err toward reporting (sound direction).
fn residual_ok(preds: &[PredPlan], item: &PItem<'_>) -> bool {
    if preds.is_empty() {
        return true;
    }
    let docs = NoDocs;
    let ctx = Ctx::new(&[], &docs);
    let binds: Vec<Option<BindVal>> = Vec::new();
    preds.iter().all(|p| {
        let r = eval_pred(p, &ctx, &binds, Some(item));
        debug_assert!(r.is_ok(), "residual predicates are self-contained");
        r.unwrap_or(true)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(src: &str) -> Query {
        Query::parse("q", src).unwrap()
    }

    fn ix(doc: &str) -> MatchIndex {
        MatchIndex::new(doc.into())
    }

    fn hits(ix: &MatchIndex, delta: &str) -> Vec<u64> {
        ix.probe(&Tree::parse(delta).unwrap()).into_iter().collect()
    }

    #[test]
    fn selective_topics_share_structure() {
        let mut m = ix("news");
        for (id, topic) in [(1, "db"), (2, "ai"), (3, "os")] {
            let reg = m.register(
                id,
                &q(&format!(
                    r#"for $i in doc("news")/item where $i/@topic = "{topic}" return {{$i}}"#
                )),
            );
            assert!(matches!(reg, Registration::Indexed { .. }));
        }
        // one shared chain: root --child item--> s1
        assert_eq!(m.state_count(), 2);
        assert_eq!(hits(&m, r#"<item topic="db">x</item>"#), vec![1]);
        assert_eq!(hits(&m, r#"<item topic="ai">x</item>"#), vec![2]);
        assert!(hits(&m, r#"<item topic="sports">x</item>"#).is_empty());
        assert!(hits(&m, r#"<other topic="db"/>"#).is_empty());
    }

    #[test]
    fn descendant_axis_matches_at_depth() {
        let mut m = ix("d");
        m.register(7, &q(r#"for $p in doc("d")//pkg return {$p/size}"#));
        assert_eq!(hits(&m, "<pkg/>"), vec![7]);
        assert_eq!(hits(&m, "<batch><sub><pkg/></sub></batch>"), vec![7]);
        assert!(hits(&m, "<batch><sub/></batch>").is_empty());
    }

    #[test]
    fn atom_tails_gate_on_presence() {
        let mut m = ix("d");
        m.register(1, &q(r#"doc("d")//pkg/@name"#));
        m.register(2, &q(r#"doc("d")/entry/text()"#));
        assert_eq!(hits(&m, r#"<pkg name="vim"/>"#), vec![1]);
        assert!(hits(&m, "<pkg/>").is_empty(), "no attribute, no new atom");
        assert_eq!(hits(&m, "<entry>hello</entry>"), vec![2]);
        assert!(
            hits(&m, "<entry/>").is_empty(),
            "empty string value yields no atom"
        );
    }

    #[test]
    fn root_anchored_atoms() {
        let mut m = ix("d");
        m.register(1, &q(r#"doc("d")/text()"#));
        m.register(2, &q(r#"doc("d")//text()"#));
        m.register(3, &q(r#"doc("d")//@v"#));
        assert_eq!(hits(&m, "<x>t</x>"), vec![1, 2]);
        assert_eq!(hits(&m, "<x><y>deep</y></x>"), vec![1, 2]);
        assert_eq!(hits(&m, r#"<x v="1"/>"#), vec![3]);
        assert!(hits(&m, "<x/>").is_empty());
    }

    #[test]
    fn bare_doc_is_a_fallback() {
        let mut m = ix("d");
        let reg = m.register(9, &q(r#"doc("d")"#));
        assert_eq!(reg, Registration::Fallback);
        assert_eq!(hits(&m, "<anything/>"), vec![9]);
    }

    #[test]
    fn root_attr_only_query_degrades_to_fallback() {
        // doc("d")/@a can never change on a graft; the safety net keeps
        // the subscription reported rather than silently never probed.
        let mut m = ix("d");
        let reg = m.register(4, &q(r#"doc("d")/@a"#));
        assert_eq!(reg, Registration::Fallback);
        assert_eq!(hits(&m, "<x/>"), vec![4]);
    }

    #[test]
    fn mid_path_atom_test_is_statically_dead() {
        // text()/x yields nothing ever; with another live pattern the
        // dead one contributes no accepts.
        let mut m = ix("d");
        let reg = m.register(
            5,
            &q(r#"for $i in doc("d")/item for $j in doc("d")/t/text() return {$i}"#),
        );
        assert!(matches!(reg, Registration::Indexed { patterns: 2 }));
        assert_eq!(hits(&m, "<item/>"), vec![5]);
    }

    #[test]
    fn remove_unregisters() {
        let mut m = ix("d");
        m.register(1, &q(r#"for $i in doc("d")/item return {$i}"#));
        assert!(m.remove(1));
        assert!(!m.remove(1));
        assert!(hits(&m, "<item/>").is_empty());
        assert_eq!(m.registered_count(), 0);
    }

    #[test]
    fn reregistration_replaces() {
        let mut m = ix("d");
        m.register(1, &q(r#"for $i in doc("d")/a return {$i}"#));
        m.register(1, &q(r#"for $i in doc("d")/b return {$i}"#));
        assert!(hits(&m, "<a/>").is_empty());
        assert_eq!(hits(&m, "<b/>"), vec![1]);
    }

    #[test]
    fn numeric_literals_stay_in_the_scan_list() {
        // "10" = "10.0" holds under numeric coercion, so the value index
        // must not be used — but the residual still evaluates exactly.
        let mut m = ix("d");
        m.register(
            1,
            &q(r#"for $i in doc("d")/item where $i/@n = "10" return {$i}"#),
        );
        assert_eq!(hits(&m, r#"<item n="10.0"/>"#), vec![1]);
        assert_eq!(hits(&m, r#"<item n="10"/>"#), vec![1]);
        assert!(hits(&m, r#"<item n="11"/>"#).is_empty());
    }

    #[test]
    fn join_conjuncts_overapproximate() {
        let mut m = ix("d");
        m.register(
            1,
            &q(r#"for $a in doc("d")/x for $b in doc("d")/y where $a/@k = $b/@k return {$a}"#),
        );
        // the join itself is not evaluated at probe time: structure gates
        assert_eq!(hits(&m, r#"<x k="1"/>"#), vec![1]);
        assert_eq!(hits(&m, r#"<y k="2"/>"#), vec![1]);
        assert!(hits(&m, "<z/>").is_empty());
    }

    #[test]
    fn negation_and_count_fold_per_variable() {
        let mut m = ix("d");
        m.register(
            1,
            &q(r#"for $i in doc("d")/item where not(exists($i/hide)) return {$i}"#),
        );
        m.register(
            2,
            &q(r#"for $i in doc("d")/item where count($i/tag) >= 2 return {$i}"#),
        );
        assert_eq!(hits(&m, "<item/>"), vec![1]);
        assert_eq!(hits(&m, "<item><hide/></item>"), vec![] as Vec<u64>);
        assert_eq!(hits(&m, "<item><tag/><tag/></item>"), vec![1, 2]);
    }

    #[test]
    fn composed_queries_union_leaf_patterns() {
        let inner = q(r#"for $i in doc("d")/item return {$i}"#);
        let outer = Query::parse("outer", r#"for $x in $0 return {$x}"#).unwrap();
        let composed = Query::compose("comp", outer, vec![inner]).unwrap();
        let mut m = ix("d");
        let reg = m.register(3, &composed);
        assert!(matches!(reg, Registration::Indexed { .. }));
        assert_eq!(hits(&m, "<item/>"), vec![3]);
        assert!(hits(&m, "<other/>").is_empty());
    }

    #[test]
    fn probe_miss_implies_unchanged_results() {
        // mini-oracle: on a miss, evaluation before and after the graft
        // must agree (the full property test lives in tests/).
        use std::collections::HashMap as Map;
        let queries = [
            r#"for $i in doc("d")/item where $i/@topic = "db" return {$i}"#,
            r#"for $p in doc("d")//pkg where $p/size/text() > 100 return {$p/@name}"#,
            r#"doc("d")/entry/text()"#,
            r#"for $i in doc("d")/item where not(exists($i/hide)) return <r>{$i}</r>"#,
        ];
        let deltas = [
            r#"<item topic="db">a</item>"#,
            r#"<item topic="ai">b</item>"#,
            r#"<pkg name="x"><size>500</size></pkg>"#,
            r#"<pkg name="y"><size>5</size></pkg>"#,
            "<entry>text</entry>",
            "<noise><pkg/></noise>",
            "<item><hide/></item>",
        ];
        let base = Tree::parse(r#"<d><item topic="db">seed</item></d>"#).unwrap();
        let mut m = ix("d");
        for (i, src) in queries.iter().enumerate() {
            m.register(i as u64, &q(src));
        }
        for delta_src in deltas {
            let delta = Tree::parse(delta_src).unwrap();
            let hit = m.probe(&delta);
            let mut grafted = base.clone();
            let root = grafted.root();
            grafted.graft(root, &delta, delta.root()).unwrap();
            let before: Map<DocName, Tree> = [("d".into(), base.clone())].into();
            let after: Map<DocName, Tree> = [("d".into(), grafted)].into();
            for (i, src) in queries.iter().enumerate() {
                if hit.contains(&(i as u64)) {
                    continue;
                }
                let qq = q(src);
                let a = qq.eval_with_docs(&[], &before).unwrap();
                let b = qq.eval_with_docs(&[], &after).unwrap();
                let ser = |ts: &[Tree]| ts.iter().map(|t| t.serialize()).collect::<Vec<_>>();
                assert_eq!(
                    ser(&a),
                    ser(&b),
                    "probe missed a change: query {src} delta {delta_src}"
                );
            }
        }
    }
}
