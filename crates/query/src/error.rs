//! Error types for query parsing, planning and evaluation.

use std::fmt;

/// Result alias for this crate.
pub type QueryResult<T> = Result<T, QueryError>;

/// Errors from the query subsystem.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// Syntax error in the textual query, with 1-based position.
    Syntax {
        /// Description of the problem.
        msg: String,
        /// 1-based character offset in the query text.
        offset: usize,
    },
    /// A `$var` was used without being bound by a `for`/`let` clause, or a
    /// parameter index exceeds the query's arity.
    UnboundVariable(String),
    /// A variable was bound twice.
    DuplicateVariable(String),
    /// Evaluation was given the wrong number of input forests.
    ArityMismatch {
        /// Declared arity of the query.
        expected: usize,
        /// Number of forests supplied.
        got: usize,
    },
    /// A `doc("…")` source could not be resolved by the evaluation context.
    UnresolvedDoc(String),
    /// A rewrite was requested on a query shape it does not apply to.
    NotApplicable(String),
    /// Internal invariant violation (a bug).
    Internal(String),
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::Syntax { msg, offset } => {
                write!(f, "syntax error at offset {offset}: {msg}")
            }
            QueryError::UnboundVariable(v) => write!(f, "unbound variable `{v}`"),
            QueryError::DuplicateVariable(v) => write!(f, "variable `{v}` bound twice"),
            QueryError::ArityMismatch { expected, got } => {
                write!(
                    f,
                    "arity mismatch: query takes {expected} inputs, got {got}"
                )
            }
            QueryError::UnresolvedDoc(d) => write!(f, "cannot resolve doc(\"{d}\")"),
            QueryError::NotApplicable(msg) => write!(f, "rewrite not applicable: {msg}"),
            QueryError::Internal(msg) => write!(f, "internal query error: {msg}"),
        }
    }
}

impl std::error::Error for QueryError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        assert!(QueryError::Syntax {
            msg: "x".into(),
            offset: 5
        }
        .to_string()
        .contains("offset 5"));
        assert!(QueryError::UnboundVariable("$x".into())
            .to_string()
            .contains("$x"));
        assert!(QueryError::ArityMismatch {
            expected: 2,
            got: 1
        }
        .to_string()
        .contains("takes 2"));
        assert!(QueryError::UnresolvedDoc("d".into())
            .to_string()
            .contains("d"));
        assert!(QueryError::NotApplicable("shape".into())
            .to_string()
            .contains("shape"));
        assert!(QueryError::Internal("bug".into())
            .to_string()
            .contains("bug"));
        assert!(QueryError::DuplicateVariable("$x".into())
            .to_string()
            .contains("twice"));
    }
}
