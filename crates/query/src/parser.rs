//! Hand-written recursive-descent parser for the query language.
//!
//! See [`crate::ast`] for the grammar. The parser is whitespace-lenient
//! between tokens and reports errors with character offsets.

use crate::ast::*;
use crate::error::{QueryError, QueryResult};

/// Parse a query body from source text.
pub fn parse_query(src: &str) -> QueryResult<QueryBody> {
    let mut p = P::new(src);
    p.ws();
    let body = if p.peek_kw("for") || p.peek_kw("let") || p.peek_kw("where") {
        p.parse_flwr()?
    } else {
        let path = p.parse_path()?;
        QueryBody::Bare(path)
    };
    p.ws();
    if !p.done() {
        return Err(p.err("unexpected trailing input"));
    }
    Ok(body)
}

/// Parse a standalone path (used by tests and tools).
pub fn parse_path(src: &str) -> QueryResult<Path> {
    let mut p = P::new(src);
    p.ws();
    let path = p.parse_path()?;
    p.ws();
    if !p.done() {
        return Err(p.err("unexpected trailing input"));
    }
    Ok(path)
}

struct P<'a> {
    src: &'a str,
    pos: usize,
}

impl<'a> P<'a> {
    fn new(src: &'a str) -> Self {
        P { src, pos: 0 }
    }

    fn err(&self, msg: impl Into<String>) -> QueryError {
        QueryError::Syntax {
            msg: msg.into(),
            offset: self.pos,
        }
    }

    fn done(&self) -> bool {
        self.pos >= self.src.len()
    }

    fn rest(&self) -> &'a str {
        &self.src[self.pos..]
    }

    fn peek(&self) -> Option<char> {
        self.rest().chars().next()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += c.len_utf8();
        Some(c)
    }

    fn ws(&mut self) {
        while matches!(self.peek(), Some(c) if c.is_whitespace()) {
            self.bump();
        }
    }

    fn eat(&mut self, s: &str) -> bool {
        if self.rest().starts_with(s) {
            self.pos += s.len();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, s: &str) -> QueryResult<()> {
        if self.eat(s) {
            Ok(())
        } else {
            Err(self.err(format!("expected `{s}`")))
        }
    }

    /// Does a keyword start here (followed by a non-name char)?
    fn peek_kw(&self, kw: &str) -> bool {
        let r = self.rest();
        r.starts_with(kw)
            && !r[kw.len()..]
                .chars()
                .next()
                .is_some_and(|c| c.is_alphanumeric() || c == '_')
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek_kw(kw) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_name(&mut self) -> QueryResult<String> {
        let start = self.pos;
        match self.peek() {
            Some(c) if c.is_alphabetic() || c == '_' => {
                self.bump();
            }
            _ => return Err(self.err("expected a name")),
        }
        while matches!(self.peek(), Some(c) if c.is_alphanumeric() || c == '_' || c == '-' || c == '.' || c == ':')
        {
            self.bump();
        }
        Ok(self.src[start..self.pos].to_string())
    }

    fn parse_string(&mut self) -> QueryResult<String> {
        self.expect("\"")?;
        let mut out = String::new();
        loop {
            match self.bump() {
                Some('"') => return Ok(out),
                Some('\\') => match self.bump() {
                    Some('"') => out.push('"'),
                    Some('\\') => out.push('\\'),
                    Some('n') => out.push('\n'),
                    Some(c) => return Err(self.err(format!("bad escape `\\{c}`"))),
                    None => return Err(self.err("unterminated string")),
                },
                Some(c) => out.push(c),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    // --- FLWR ---------------------------------------------------------

    fn parse_flwr(&mut self) -> QueryResult<QueryBody> {
        let mut clauses = Vec::new();
        loop {
            self.ws();
            if self.eat_kw("for") {
                self.ws();
                let var = self.parse_dollar_name()?;
                self.ws();
                if !self.eat_kw("in") {
                    return Err(self.err("expected `in`"));
                }
                self.ws();
                let source = self.parse_path()?;
                clauses.push(Clause::For { var, source });
            } else if self.eat_kw("let") {
                self.ws();
                let var = self.parse_dollar_name()?;
                self.ws();
                self.expect(":=")?;
                self.ws();
                let path = self.parse_path()?;
                clauses.push(Clause::Let { var, path });
            } else if self.eat_kw("where") {
                self.ws();
                let c = self.parse_cond()?;
                clauses.push(Clause::Where(c));
            } else if self.eat_kw("return") {
                self.ws();
                let ret = self.parse_template()?;
                if clauses.is_empty() {
                    return Err(self.err("`return` without any clause"));
                }
                return Ok(QueryBody::Flwr { clauses, ret });
            } else {
                return Err(self.err("expected `for`, `let`, `where` or `return`"));
            }
        }
    }

    fn parse_dollar_name(&mut self) -> QueryResult<String> {
        self.expect("$")?;
        if matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            return Err(self.err("`for`/`let` variables must be named, not numeric"));
        }
        self.parse_name()
    }

    // --- paths ----------------------------------------------------------

    fn parse_path(&mut self) -> QueryResult<Path> {
        let start = if self.eat("$") {
            if matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                let s = self.pos;
                while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                    self.bump();
                }
                let n: usize = self.src[s..self.pos]
                    .parse()
                    .map_err(|_| self.err("bad parameter index"))?;
                PathStart::Param(n)
            } else {
                PathStart::Var(self.parse_name()?)
            }
        } else if self.peek_kw("doc") {
            self.eat_kw("doc");
            self.ws();
            self.expect("(")?;
            self.ws();
            let name = self.parse_string()?;
            self.ws();
            self.expect(")")?;
            PathStart::Doc(name)
        } else {
            return Err(self.err("expected `$var`, `$N` or `doc(\"…\")`"));
        };
        let steps = self.parse_steps()?;
        Ok(Path { start, steps })
    }

    /// A relative path inside a predicate: starts with a test directly.
    fn parse_rel_path(&mut self) -> QueryResult<Path> {
        let test = self.parse_test()?;
        let mut preds = Vec::new();
        while self.peek() == Some('[') {
            self.bump();
            self.ws();
            let c = self.parse_cond()?;
            self.ws();
            self.expect("]")?;
            preds.push(c);
        }
        let first = Step {
            axis: Axis::Child,
            test,
            preds,
        };
        let mut steps = vec![first];
        steps.extend(self.parse_steps()?);
        Ok(Path {
            start: PathStart::Var(REL_VAR.to_string()),
            steps,
        })
    }

    fn parse_steps(&mut self) -> QueryResult<Vec<Step>> {
        let mut steps = Vec::new();
        loop {
            let axis = if self.rest().starts_with("//") {
                self.pos += 2;
                Axis::Descendant
            } else if self.peek() == Some('/') {
                self.bump();
                Axis::Child
            } else {
                return Ok(steps);
            };
            let test = self.parse_test()?;
            let mut preds = Vec::new();
            while self.peek() == Some('[') {
                self.bump();
                self.ws();
                let c = self.parse_cond()?;
                self.ws();
                self.expect("]")?;
                preds.push(c);
            }
            steps.push(Step { axis, test, preds });
        }
    }

    fn parse_test(&mut self) -> QueryResult<NodeTest> {
        if self.eat("@") {
            Ok(NodeTest::Attr(self.parse_name()?))
        } else if self.eat("*") {
            Ok(NodeTest::Wildcard)
        } else if self.peek_kw("text") {
            let save = self.pos;
            self.eat_kw("text");
            if self.eat("()") {
                Ok(NodeTest::Text)
            } else {
                // An element actually named `text`.
                self.pos = save;
                Ok(NodeTest::Label(self.parse_name()?))
            }
        } else {
            Ok(NodeTest::Label(self.parse_name()?))
        }
    }

    // --- conditions ------------------------------------------------------

    fn parse_cond(&mut self) -> QueryResult<Cond> {
        let mut lhs = self.parse_and()?;
        loop {
            self.ws();
            if self.eat_kw("or") {
                self.ws();
                let rhs = self.parse_and()?;
                lhs = Cond::Or(Box::new(lhs), Box::new(rhs));
            } else {
                return Ok(lhs);
            }
        }
    }

    fn parse_and(&mut self) -> QueryResult<Cond> {
        let mut lhs = self.parse_prim_cond()?;
        loop {
            self.ws();
            if self.eat_kw("and") {
                self.ws();
                let rhs = self.parse_prim_cond()?;
                lhs = Cond::And(Box::new(lhs), Box::new(rhs));
            } else {
                return Ok(lhs);
            }
        }
    }

    fn parse_prim_cond(&mut self) -> QueryResult<Cond> {
        self.ws();
        if self.peek_kw("not") {
            self.eat_kw("not");
            self.ws();
            self.expect("(")?;
            let c = self.parse_cond()?;
            self.ws();
            self.expect(")")?;
            return Ok(Cond::Not(Box::new(c)));
        }
        if self.peek_kw("contains") {
            self.eat_kw("contains");
            self.ws();
            self.expect("(")?;
            self.ws();
            let path = self.parse_cond_path()?;
            self.ws();
            self.expect(",")?;
            self.ws();
            let needle = self.parse_string()?;
            self.ws();
            self.expect(")")?;
            return Ok(Cond::Contains { path, needle });
        }
        if self.peek_kw("count") {
            self.eat_kw("count");
            self.ws();
            self.expect("(")?;
            self.ws();
            let path = self.parse_cond_path()?;
            self.ws();
            self.expect(")")?;
            self.ws();
            let op = if self.eat("!=") {
                CmpOp::Ne
            } else if self.eat("<=") {
                CmpOp::Le
            } else if self.eat(">=") {
                CmpOp::Ge
            } else if self.eat("=") {
                CmpOp::Eq
            } else if self.eat("<") {
                CmpOp::Lt
            } else if self.eat(">") {
                CmpOp::Gt
            } else {
                return Err(self.err("expected a comparison operator after count(…)"));
            };
            self.ws();
            let n = self
                .parse_number()?
                .parse::<u64>()
                .map_err(|_| self.err("count(…) compares against a non-negative integer"))?;
            return Ok(Cond::CountCmp { path, op, n });
        }
        if self.peek_kw("exists") {
            self.eat_kw("exists");
            self.ws();
            self.expect("(")?;
            self.ws();
            let p = self.parse_cond_path()?;
            self.ws();
            self.expect(")")?;
            return Ok(Cond::Exists(p));
        }
        if self.peek() == Some('(') {
            self.bump();
            let c = self.parse_cond()?;
            self.ws();
            self.expect(")")?;
            return Ok(c);
        }
        // A comparison.
        let lhs = self.parse_cond_path()?;
        self.ws();
        let op = if self.eat("!=") {
            CmpOp::Ne
        } else if self.eat("<=") {
            CmpOp::Le
        } else if self.eat(">=") {
            CmpOp::Ge
        } else if self.eat("=") {
            CmpOp::Eq
        } else if self.eat("<") {
            CmpOp::Lt
        } else if self.eat(">") {
            CmpOp::Gt
        } else {
            return Err(self.err("expected a comparison operator"));
        };
        self.ws();
        let rhs = if self.peek() == Some('"') {
            Operand::Literal(self.parse_string()?)
        } else if matches!(self.peek(), Some(c) if c.is_ascii_digit() || c == '-') {
            Operand::Literal(self.parse_number()?)
        } else {
            Operand::Path(self.parse_cond_path()?)
        };
        Ok(Cond::Cmp { lhs, op, rhs })
    }

    /// A path in condition position: absolute (`$…`, `doc(…)`) or relative
    /// (starts with a test, resolved against the predicate's context node).
    fn parse_cond_path(&mut self) -> QueryResult<Path> {
        match self.peek() {
            Some('$') => self.parse_path(),
            Some(_) if self.peek_kw("doc") => self.parse_path(),
            Some(c) if c.is_alphabetic() || c == '_' || c == '@' || c == '*' => {
                self.parse_rel_path()
            }
            _ => Err(self.err("expected a path")),
        }
    }

    fn parse_number(&mut self) -> QueryResult<String> {
        let start = self.pos;
        if self.peek() == Some('-') {
            self.bump();
        }
        let mut saw = false;
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            saw = true;
            self.bump();
        }
        if self.peek() == Some('.') {
            self.bump();
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.bump();
            }
        }
        if !saw {
            return Err(self.err("expected a number"));
        }
        Ok(self.src[start..self.pos].to_string())
    }

    // --- templates -------------------------------------------------------

    fn parse_template(&mut self) -> QueryResult<Template> {
        self.ws();
        match self.peek() {
            Some('<') => self.parse_template_element(),
            Some('{') => self.parse_splice(),
            _ => Err(self.err("expected `<element>` or `{path}` after `return`")),
        }
    }

    fn parse_splice(&mut self) -> QueryResult<Template> {
        self.expect("{")?;
        self.ws();
        let p = self.parse_path()?;
        self.ws();
        self.expect("}")?;
        Ok(Template::Splice(p))
    }

    fn parse_template_element(&mut self) -> QueryResult<Template> {
        self.expect("<")?;
        let label = self.parse_name()?;
        let mut attrs = Vec::new();
        loop {
            self.ws();
            match self.peek() {
                Some('/') => {
                    self.expect("/>")?;
                    return Ok(Template::Element {
                        label,
                        attrs,
                        children: vec![],
                    });
                }
                Some('>') => {
                    self.bump();
                    break;
                }
                Some(c) if c.is_alphabetic() || c == '_' => {
                    let aname = self.parse_name()?;
                    self.ws();
                    self.expect("=")?;
                    self.ws();
                    attrs.push((aname, self.parse_attr_template()?));
                }
                _ => return Err(self.err("malformed template tag")),
            }
        }
        // children until </label>
        let mut children = Vec::new();
        loop {
            if self.rest().starts_with("</") {
                self.pos += 2;
                let close = self.parse_name()?;
                if close != label {
                    return Err(self.err(format!(
                        "mismatched template tag: `{label}` closed by `{close}`"
                    )));
                }
                self.ws();
                self.expect(">")?;
                return Ok(Template::Element {
                    label,
                    attrs,
                    children,
                });
            }
            match self.peek() {
                Some('<') => children.push(self.parse_template_element()?),
                Some('{') if self.rest().starts_with("{{") => {
                    children.push(self.parse_template_text()?)
                }
                Some('{') => children.push(self.parse_splice()?),
                Some(_) => children.push(self.parse_template_text()?),
                None => return Err(self.err(format!("unterminated template `<{label}>`"))),
            }
        }
    }

    fn parse_attr_template(&mut self) -> QueryResult<AttrTemplate> {
        self.expect("\"")?;
        if self.peek() == Some('{') {
            self.bump();
            self.ws();
            let p = self.parse_path()?;
            self.ws();
            self.expect("}")?;
            self.expect("\"")?;
            return Ok(AttrTemplate::Splice(p));
        }
        let mut out = String::new();
        loop {
            match self.bump() {
                Some('"') => return Ok(AttrTemplate::Literal(out)),
                Some('\\') => match self.bump() {
                    Some('"') => out.push('"'),
                    Some('\\') => out.push('\\'),
                    Some(c) => return Err(self.err(format!("bad escape `\\{c}`"))),
                    None => return Err(self.err("unterminated attribute")),
                },
                Some(c) => out.push(c),
                None => return Err(self.err("unterminated attribute")),
            }
        }
    }

    fn parse_template_text(&mut self) -> QueryResult<Template> {
        let mut out = String::new();
        loop {
            match self.peek() {
                None | Some('<') => break,
                Some('{') if self.rest().starts_with("{{") => {
                    self.pos += 2;
                    out.push('{');
                }
                Some('}') if self.rest().starts_with("}}") => {
                    self.pos += 2;
                    out.push('}');
                }
                Some('{') | Some('}') => break,
                Some('&') => {
                    if self.eat("&lt;") {
                        out.push('<');
                    } else if self.eat("&amp;") {
                        out.push('&');
                    } else if self.eat("&gt;") {
                        out.push('>');
                    } else {
                        return Err(self.err("bad entity in template text"));
                    }
                }
                Some(_) => {
                    let c = self.bump().expect("peeked");
                    out.push(c);
                }
            }
        }
        Ok(Template::Text(out))
    }
}

pub use crate::ast::REL_VAR;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bare_path() {
        let q = parse_query("$0//pkg/@name").unwrap();
        match q {
            QueryBody::Bare(p) => assert_eq!(p.to_string(), "$0//pkg/@name"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn doc_path() {
        let p = parse_path(r#"doc("catalog")/pkg"#).unwrap();
        assert_eq!(p.start, PathStart::Doc("catalog".into()));
        assert_eq!(p.to_string(), r#"doc("catalog")/pkg"#);
    }

    #[test]
    fn full_flwr() {
        let src = r#"for $p in $0//pkg where $p/@name = "vim" and exists($p/deps) return <hit v="{$p/version}">{$p/deps}</hit>"#;
        let q = parse_query(src).unwrap();
        match &q {
            QueryBody::Flwr { clauses, .. } => assert_eq!(clauses.len(), 2),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn roundtrip_through_display() {
        let srcs = [
            r#"for $p in $0//pkg where $p/@name = "vim" return {$p}"#,
            r#"for $a in $0/x for $b in $1//y where $a/k = $b/k return <j>{$a}{$b}</j>"#,
            r#"let $v := $0//version where $v/text() != "0" return <out>{$v}</out>"#,
            "$0//pkg",
            r#"for $x in doc("d")/item where contains($x/@id, "a-b") or not(exists($x/old)) return <r/>"#,
            r#"$0//pkg[version = "9.1"][@name != "x"]/deps[exists(dep)]"#,
            r#"for $x in $0//pkg[deps/dep = "glibc"] return <r a="{$x/@name}"/>"#,
        ];
        for src in srcs {
            let q1 = parse_query(src).unwrap();
            let rendered = q1.to_string();
            let q2 = parse_query(&rendered)
                .unwrap_or_else(|e| panic!("reparse of `{rendered}` failed: {e}"));
            assert_eq!(q1, q2, "{src}");
        }
    }

    #[test]
    fn relative_paths_in_predicates() {
        let p = parse_path(r#"$0//pkg[version = "9.1"][@name != "x"]"#).unwrap();
        let step = &p.steps[0];
        assert_eq!(step.preds.len(), 2);
        match &step.preds[0] {
            Cond::Cmp { lhs, .. } => {
                assert_eq!(lhs.start, PathStart::Var(REL_VAR.to_string()));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn numbers_as_literals() {
        let q = parse_query(r#"for $x in $0//v where $x/text() >= 2.5 return {$x}"#).unwrap();
        match q {
            QueryBody::Flwr { clauses, .. } => match &clauses[1] {
                Clause::Where(Cond::Cmp { rhs, .. }) => {
                    assert_eq!(rhs, &Operand::Literal("2.5".into()));
                }
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn template_text_and_escapes() {
        let q = parse_query(
            r#"for $x in $0/a return <out>literal {{braces}} &lt;tag&gt; &amp; {$x}</out>"#,
        )
        .unwrap();
        match q {
            QueryBody::Flwr { ret, .. } => {
                let rendered = ret.to_string();
                let reparsed = parse_query(&format!("for $x in $0/a return {rendered}")).unwrap();
                match reparsed {
                    QueryBody::Flwr { ret: r2, .. } => assert_eq!(ret, r2),
                    _ => unreachable!(),
                }
                match &ret {
                    Template::Element { children, .. } => {
                        assert!(matches!(&children[0], Template::Text(t)
                            if t == "literal {braces} <tag> & "));
                    }
                    _ => unreachable!(),
                }
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn text_step_vs_text_element() {
        let p1 = parse_path("$x/text()").unwrap();
        assert_eq!(p1.steps[0].test, NodeTest::Text);
        let p2 = parse_path("$x/text").unwrap();
        assert_eq!(p2.steps[0].test, NodeTest::Label("text".into()));
    }

    #[test]
    fn wildcard_and_attr_tests() {
        let p = parse_path("$x/*/@id").unwrap();
        assert_eq!(p.steps[0].test, NodeTest::Wildcard);
        assert_eq!(p.steps[1].test, NodeTest::Attr("id".into()));
    }

    #[test]
    fn errors() {
        assert!(parse_query("").is_err());
        assert!(parse_query("for $x in").is_err());
        assert!(parse_query("for $x in $0 return").is_err());
        assert!(parse_query("return <a/>").is_err());
        assert!(parse_query("for $1 in $0 return <a/>").is_err());
        assert!(parse_query(r#"for $x in $0 where $x = return <a/>"#).is_err());
        assert!(parse_query("for $x in $0 return <a></b>").is_err());
        assert!(parse_query("for $x in $0 return <a>").is_err());
        assert!(parse_query("$0//pkg extra").is_err());
        assert!(parse_query(r#"for $x in $0 where $x < "y"#).is_err());
        assert!(parse_path("doc(unquoted)").is_err());
    }

    #[test]
    fn let_clause() {
        let q =
            parse_query(r#"let $all := $0//pkg where exists($all) return <n>{$all}</n>"#).unwrap();
        match q {
            QueryBody::Flwr { clauses, .. } => {
                assert!(matches!(&clauses[0], Clause::Let { var, .. } if var == "all"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn nested_parens_and_precedence() {
        // and binds tighter than or
        let q = parse_query(
            r#"for $x in $0 where $x/a = "1" or $x/b = "2" and $x/c = "3" return <r/>"#,
        )
        .unwrap();
        match q {
            QueryBody::Flwr { clauses, .. } => match &clauses[1] {
                Clause::Where(Cond::Or(_, rhs)) => {
                    assert!(matches!(**rhs, Cond::And(_, _)));
                }
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }
}
