#![deny(missing_docs)]

//! # axml-query — the declarative XML query language of AXML peers
//!
//! The paper (§2.2) relies on *declarative Web services* whose
//! implementations are *"declarative XML query or update statements,
//! possibly parameterized"*, visible to other peers — that visibility is
//! what enables every optimization of §3. This crate is that query
//! subsystem:
//!
//! * a **textual FLWR language** (`for $x in $0//pkg where … return <r>…</r>`)
//!   with paths, predicates, joins over several `for` clauses, `let`
//!   bindings and XML construction templates ([`parser`], [`ast`]),
//! * a **logical algebra** of plans (DataFusion-style: a tree of operators
//!   with visitor/rewriter infrastructure) ([`plan`]),
//! * a **batch evaluator** over forests of input trees and a
//!   **continuous/incremental evaluator** ([`eval`], [`delta`]) — the
//!   paper's services and queries are all continuous (§2.2), consuming
//!   streams of trees that accumulate under nodes,
//! * **composition and decomposition** of queries — the basis of the
//!   paper's equivalence rule (11) and of Example 1 (*pushing
//!   selections*) ([`rewrite`]), and
//! * **cardinality and result-size estimation** feeding the distributed
//!   cost model of `axml-core` ([`estimate`]).
//!
//! ```
//! use axml_query::Query;
//! use axml_xml::tree::Tree;
//!
//! let q = Query::parse(
//!     "lookup",
//!     r#"for $p in $0//pkg where $p/@name = "vim" return <hit>{$p/version}</hit>"#,
//! ).unwrap();
//! let catalog = Tree::parse(
//!     r#"<c><pkg name="vim"><version>9.1</version></pkg>
//!        <pkg name="gcc"><version>13</version></pkg></c>"#).unwrap();
//! let out = q.eval_batch(&[vec![catalog]]).unwrap();
//! assert_eq!(out.len(), 1);
//! assert_eq!(out[0].serialize(), "<hit><version>9.1</version></hit>");
//! ```

pub mod ast;
pub mod delta;
pub mod error;
pub mod estimate;
pub mod eval;
pub mod lower;
pub mod matcher;
pub mod parser;
pub mod plan;
pub mod query;
pub mod rewrite;

pub use error::{QueryError, QueryResult};
pub use matcher::{MatchIndex, Registration};
pub use query::Query;
