//! Cardinality and result-size estimation.
//!
//! The distributed optimizer of `axml-core` compares plans by how many
//! bytes each candidate ships between peers; for plans that ship *query
//! results* (delegated selections, pushed queries) it needs an estimate of
//! the result's cardinality and serialized size **before** running the
//! query. This module provides classic textbook estimation: per-label
//! statistics collected from a forest, multiplied through the plan with
//! default selectivities for predicates.
//!
//! Estimates are heuristics — property tests assert only sanity (non-
//! negative, zero on empty input, monotone in input size), not accuracy.

use crate::ast::{Axis, CmpOp};
use crate::plan::{Op, OperandPlan, PathPlan, Plan, PlanStep, PlanTest, PredPlan, StartRef};
use axml_xml::label::Label;
use axml_xml::tree::{NodeKind, Tree};
use std::collections::HashMap;

/// Default selectivity of an equality predicate when the number of
/// distinct values is unknown.
pub const SEL_EQ: f64 = 0.1;
/// Selectivity of `!=`.
pub const SEL_NE: f64 = 0.9;
/// Selectivity of a range comparison.
pub const SEL_RANGE: f64 = 1.0 / 3.0;
/// Selectivity of `contains`.
pub const SEL_CONTAINS: f64 = 0.25;
/// Selectivity of `exists`.
pub const SEL_EXISTS: f64 = 0.8;

/// Per-label statistics over one forest.
#[derive(Debug, Clone, Default)]
pub struct LabelStats {
    /// Total occurrences of the label.
    pub count: usize,
    /// Sum of the serialized sizes of subtrees rooted at the label.
    pub total_bytes: usize,
    /// Number of distinct string values (capped sample).
    pub distinct_values: usize,
}

/// Statistics of a forest, driving the estimator.
#[derive(Debug, Clone, Default)]
pub struct ForestStats {
    /// Number of trees.
    pub n_trees: usize,
    /// Total element nodes.
    pub total_elements: usize,
    /// Total serialized bytes.
    pub total_bytes: usize,
    /// Per-label stats.
    pub labels: HashMap<Label, LabelStats>,
}

impl ForestStats {
    /// Collect statistics over a forest.
    pub fn collect(forest: &[Tree]) -> Self {
        let mut stats = ForestStats::default();
        let mut values: HashMap<Label, std::collections::HashSet<String>> = HashMap::new();
        stats.n_trees = forest.len();
        for t in forest {
            stats.total_bytes += t.serialized_size();
            for n in t.descendants_with_self(t.root()) {
                if let NodeKind::Element { label, .. } = t.node(n).kind() {
                    stats.total_elements += 1;
                    let entry = stats.labels.entry(*label).or_default();
                    entry.count += 1;
                    entry.total_bytes += t.serialized_size_node(n);
                    let vals = values.entry(*label).or_default();
                    if vals.len() < 256 {
                        vals.insert(t.text(n));
                    }
                }
            }
        }
        for (l, vals) in values {
            if let Some(e) = stats.labels.get_mut(&l) {
                e.distinct_values = vals.len();
            }
        }
        stats
    }

    /// Average per-tree occurrences of a label.
    pub fn per_tree(&self, label: &Label) -> f64 {
        if self.n_trees == 0 {
            return 0.0;
        }
        self.labels
            .get(label)
            .map(|s| s.count as f64 / self.n_trees as f64)
            .unwrap_or(0.0)
    }

    /// Average serialized size of a subtree rooted at `label`.
    pub fn avg_bytes(&self, label: &Label) -> f64 {
        match self.labels.get(label) {
            Some(s) if s.count > 0 => s.total_bytes as f64 / s.count as f64,
            _ => 0.0,
        }
    }

    /// Equality selectivity for values under `label`.
    pub fn eq_selectivity(&self, label: &Label) -> f64 {
        match self.labels.get(label) {
            Some(s) if s.distinct_values > 0 => (1.0 / s.distinct_values as f64).min(1.0),
            _ => SEL_EQ,
        }
    }
}

/// An estimate of a query's output.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Estimate {
    /// Expected number of result trees.
    pub cardinality: f64,
    /// Expected total serialized bytes of the results.
    pub bytes: f64,
}

impl Estimate {
    /// The zero estimate.
    pub fn zero() -> Self {
        Estimate {
            cardinality: 0.0,
            bytes: 0.0,
        }
    }
}

/// Estimate the cardinality of a path applied to one context item, using
/// the stats of the forest the path ultimately reads.
fn path_fanout(steps: &[PlanStep], stats: &ForestStats) -> (f64, f64) {
    // Returns (expected matches per start item, avg bytes of one match).
    let mut card = 1.0;
    let mut last_bytes = if stats.n_trees > 0 {
        stats.total_bytes as f64 / stats.n_trees as f64
    } else {
        0.0
    };
    for step in steps {
        match &step.test {
            PlanTest::Label(l) => {
                // Heuristic: label frequency per tree bounds the fan-out of
                // both child and descendant steps.
                let f = stats.per_tree(l).max(0.0);
                let f = match step.axis {
                    Axis::Descendant => f,
                    Axis::Child => f.min(stats.per_tree(l)),
                };
                card *= f;
                last_bytes = stats.avg_bytes(l);
            }
            PlanTest::Wildcard => {
                let avg_children = if stats.n_trees > 0 {
                    (stats.total_elements as f64 / stats.n_trees as f64).max(1.0)
                } else {
                    1.0
                };
                card *= avg_children;
                last_bytes = if stats.total_elements > 0 {
                    stats.total_bytes as f64 / stats.total_elements as f64
                } else {
                    0.0
                };
            }
            PlanTest::Text | PlanTest::Attr(_) => {
                // At most one atom per node; assume present.
                last_bytes = 16.0;
            }
        }
        for p in &step.preds {
            card *= pred_selectivity(p, stats);
        }
    }
    (card, last_bytes)
}

/// Selectivity of a predicate under the stats.
pub fn pred_selectivity(pred: &PredPlan, stats: &ForestStats) -> f64 {
    match pred {
        PredPlan::And(a, b) => pred_selectivity(a, stats) * pred_selectivity(b, stats),
        PredPlan::Or(a, b) => {
            let (x, y) = (pred_selectivity(a, stats), pred_selectivity(b, stats));
            (x + y - x * y).min(1.0)
        }
        PredPlan::Not(c) => 1.0 - pred_selectivity(c, stats),
        PredPlan::Cmp { lhs, op, rhs } => {
            let base = match op {
                CmpOp::Eq => {
                    // Use distinct-value stats when the compared label is known.
                    lhs.steps
                        .iter()
                        .rev()
                        .find_map(|s| match &s.test {
                            PlanTest::Label(l) => Some(stats.eq_selectivity(l)),
                            _ => None,
                        })
                        .unwrap_or(SEL_EQ)
                }
                CmpOp::Ne => SEL_NE,
                _ => SEL_RANGE,
            };
            // Comparing against another path (a join) is less selective.
            match rhs {
                OperandPlan::Literal(_) => base,
                OperandPlan::Path(_) => (base * 2.0).min(1.0),
            }
        }
        PredPlan::Contains { .. } => SEL_CONTAINS,
        PredPlan::Exists(_) => SEL_EXISTS,
        PredPlan::CountCmp { op, .. } => match op {
            CmpOp::Eq => SEL_EQ,
            CmpOp::Ne => SEL_NE,
            _ => SEL_RANGE,
        },
    }
}

/// Estimate the output of `plan` when parameter `i` is described by
/// `stats[i]`.
pub fn estimate(plan: &Plan, stats: &[ForestStats]) -> Estimate {
    let empty = ForestStats::default();
    let stats_for = |path: &PathPlan| -> &ForestStats {
        match &path.start {
            StartRef::Source(crate::plan::SourceRef::Param(i)) => stats.get(*i).unwrap_or(&empty),
            _ => stats.first().unwrap_or(&empty),
        }
    };
    // Walk the operator chain innermost-first, multiplying cardinalities.
    let mut chain: Vec<&Op> = Vec::new();
    let mut cur = Some(&plan.ops);
    while let Some(op) = cur {
        chain.push(op);
        cur = op.input();
    }
    chain.reverse();
    let mut card: f64 = 1.0;
    let mut spliced_bytes: f64 = 64.0; // default constructed-tree size
    for op in chain {
        match op {
            Op::Unit => {}
            Op::ForEach { path, .. } => {
                let s = stats_for(path);
                let start_card = match &path.start {
                    StartRef::Source(crate::plan::SourceRef::Param(_)) => s.n_trees as f64,
                    _ => 1.0,
                };
                let (fanout, bytes) = path_fanout(&path.steps, s);
                let per_start = if path.steps.is_empty() { 1.0 } else { fanout };
                card *= (start_card * per_start).max(0.0);
                spliced_bytes = bytes.max(1.0);
            }
            Op::LetBind { .. } => {}
            Op::Filter { pred, .. } => {
                let s = stats.first().unwrap_or(&empty);
                card *= pred_selectivity(pred, s);
            }
        }
    }
    if stats.iter().all(|s| s.n_trees == 0) && plan.arity > 0 {
        return Estimate::zero();
    }
    Estimate {
        cardinality: card,
        bytes: card * (spliced_bytes + 32.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower;
    use crate::parser::parse_query;

    fn forest(n: usize) -> Vec<Tree> {
        (0..n)
            .map(|i| {
                Tree::parse(&format!(
                    r#"<u><pkg name="p{i}"><size>{}</size></pkg></u>"#,
                    i * 100
                ))
                .unwrap()
            })
            .collect()
    }

    fn plan(src: &str) -> Plan {
        lower(&parse_query(src).unwrap(), 1).unwrap()
    }

    #[test]
    fn stats_collection() {
        let f = forest(10);
        let s = ForestStats::collect(&f);
        assert_eq!(s.n_trees, 10);
        assert_eq!(s.labels[&Label::new("pkg")].count, 10);
        assert_eq!(s.per_tree(&Label::new("pkg")), 1.0);
        assert!(s.avg_bytes(&Label::new("pkg")) > 10.0);
        assert_eq!(s.per_tree(&Label::new("nothing")), 0.0);
        assert_eq!(s.avg_bytes(&Label::new("nothing")), 0.0);
        // sizes are distinct → selectivity ~ 1/10
        assert!((s.eq_selectivity(&Label::new("size")) - 0.1).abs() < 1e-9);
    }

    #[test]
    fn estimate_scales_with_input() {
        let q = plan("for $p in $0//pkg return {$p}");
        let small = estimate(&q, &[ForestStats::collect(&forest(5))]);
        let large = estimate(&q, &[ForestStats::collect(&forest(50))]);
        assert!(large.cardinality > small.cardinality * 5.0);
        assert!(large.bytes > small.bytes);
    }

    #[test]
    fn selection_reduces_estimate() {
        let all = plan("for $p in $0//pkg return {$p}");
        let sel = plan(r#"for $p in $0//pkg where $p/size/text() = "100" return {$p}"#);
        let s = [ForestStats::collect(&forest(20))];
        assert!(estimate(&sel, &s).cardinality < estimate(&all, &s).cardinality);
    }

    #[test]
    fn empty_input_zero() {
        let q = plan("for $p in $0//pkg return {$p}");
        let e = estimate(&q, &[ForestStats::collect(&[])]);
        assert_eq!(e.cardinality, 0.0);
        assert_eq!(e, Estimate::zero());
    }

    #[test]
    fn joins_multiply() {
        let j = plan("for $a in $0//pkg for $b in $0//pkg return <p/>");
        let single = plan("for $a in $0//pkg return <p/>");
        let s = [ForestStats::collect(&forest(10))];
        let ej = estimate(&j, &s);
        let es = estimate(&single, &s);
        assert!(ej.cardinality > es.cardinality * 5.0);
    }

    #[test]
    fn selectivities_bounded() {
        let s = ForestStats::collect(&forest(10));
        let q = plan(
            r#"for $p in $0//pkg where contains($p/@name, "p") or not(exists($p/deps)) return {$p}"#,
        );
        if let Op::Filter { pred, .. } = &q.ops {
            let sel = pred_selectivity(pred, &s);
            assert!((0.0..=1.0).contains(&sel), "{sel}");
        } else {
            panic!("expected filter");
        }
    }
}
