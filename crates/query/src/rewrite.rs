//! Plan rewrites: query decomposition and local optimizations.
//!
//! These are the query-level building blocks of the paper's §3.3:
//!
//! * [`decompose_selection`] produces the Example-1 shape `q ≡ q1(σ(q2))`:
//!   a *pushed* query (scan + all selections, returning copies of the
//!   matched elements) and an *outer* query (the construction, running
//!   over the transferred forest). `axml-core`'s rule R11/PushSelections
//!   combines it with query delegation (rule 10) to ship `σ(q2)` to the
//!   data's peer and only transfer the selected subset.
//! * [`push_filter_into_path`] folds a `where` clause into a path
//!   predicate — a purely local simplification used as an ablation.
//! * [`rename_var`]/[`map_paths`] are the supporting plumbing.

use crate::plan::{
    AttrTplPlan, Op, OperandPlan, PathPlan, Plan, PlanTest, PredPlan, StartRef, TemplatePlan, VarId,
};

/// Apply `f` to every path in the plan (operator chain, nested predicates
/// and template).
pub fn map_paths(plan: &mut Plan, f: &mut impl FnMut(&mut PathPlan)) {
    fn in_path(p: &mut PathPlan, f: &mut impl FnMut(&mut PathPlan)) {
        // Visit nested predicate paths first, then the path itself.
        for s in &mut p.steps {
            for pred in &mut s.preds {
                in_pred(pred, f);
            }
        }
        f(p);
    }
    fn in_pred(pred: &mut PredPlan, f: &mut impl FnMut(&mut PathPlan)) {
        match pred {
            PredPlan::And(a, b) | PredPlan::Or(a, b) => {
                in_pred(a, f);
                in_pred(b, f);
            }
            PredPlan::Not(c) => in_pred(c, f),
            PredPlan::Cmp { lhs, rhs, .. } => {
                in_path(lhs, f);
                if let OperandPlan::Path(p) = rhs {
                    in_path(p, f);
                }
            }
            PredPlan::Contains { path, .. } => in_path(path, f),
            PredPlan::Exists(p) => in_path(p, f),
            PredPlan::CountCmp { path, .. } => in_path(path, f),
        }
    }
    fn in_tpl(t: &mut TemplatePlan, f: &mut impl FnMut(&mut PathPlan)) {
        match t {
            TemplatePlan::Element {
                attrs, children, ..
            } => {
                for (_, a) in attrs {
                    if let AttrTplPlan::Splice(p) = a {
                        in_path(p, f);
                    }
                }
                for c in children {
                    in_tpl(c, f);
                }
            }
            TemplatePlan::Text(_) => {}
            TemplatePlan::Splice(p) => in_path(p, f),
        }
    }
    fn in_op(op: &mut Op, f: &mut impl FnMut(&mut PathPlan)) {
        match op {
            Op::Unit => {}
            Op::ForEach { path, input, .. } | Op::LetBind { path, input, .. } => {
                in_path(path, f);
                in_op(input, f);
            }
            Op::Filter { pred, input } => {
                in_pred(pred, f);
                in_op(input, f);
            }
        }
    }
    in_op(&mut plan.ops, f);
    in_tpl(&mut plan.template, f);
}

/// Rename variable `from` to `to` in every path of the plan (start refs
/// only; binding sites are the caller's responsibility).
pub fn rename_var(plan: &mut Plan, from: VarId, to: VarId) {
    map_paths(plan, &mut |p| {
        if p.start == StartRef::Var(from) {
            p.start = StartRef::Var(to);
        }
    });
}

/// Decompose `q` into `(outer, pushed)` such that
/// `q(F) ≡ outer(pushed(F))` for every forest `F` — Example 1's
/// `q ≡ q1(σ(q2))` with the selection σ kept inside `pushed`.
///
/// Applies when the plan is a chain of `Filter`s over a **single**
/// `ForEach` that yields *element* nodes, and both the filters and the
/// template reference only that variable. Returns `None` otherwise.
///
/// * `pushed` — same scan and filters, returning a copy of each match;
///   same arity as `q`.
/// * `outer` — unary: iterates the forest produced by `pushed` and runs
///   the original construction on each tree.
pub fn decompose_selection(q: &Plan) -> Option<(Plan, Plan)> {
    // Walk the chain: Filters* over one ForEach over Unit.
    let mut filters: Vec<&PredPlan> = Vec::new();
    let mut cur = &q.ops;
    let (var, path) = loop {
        match cur {
            Op::Filter { pred, input } => {
                filters.push(pred);
                cur = input;
            }
            Op::ForEach { var, path, input } => {
                if !matches!(**input, Op::Unit) {
                    return None; // more than one binding clause
                }
                break (*var, path);
            }
            _ => return None,
        }
    };
    // The scan must produce element nodes (atoms don't survive the copy
    // round-trip with identical shape).
    match path.steps.last().map(|s| &s.test) {
        None | Some(PlanTest::Label(_)) | Some(PlanTest::Wildcard) => {}
        Some(PlanTest::Text) | Some(PlanTest::Attr(_)) => return None,
    }
    // Vacuous decompositions would loop. A query whose template is a bare
    // copy of the scanned variable decomposes into itself plus an identity
    // outer; one with no filters and no steps is already an "outer".
    if q.template == TemplatePlan::Splice(PathPlan::var(var))
        || (filters.is_empty() && path.steps.is_empty())
    {
        return None;
    }
    // Filters and template must depend only on `var` (no params/docs).
    for pred in &filters {
        let mut clean = true;
        let mut check = |p: &PathPlan| {
            clean &=
                matches!(p.start, StartRef::Var(v) if v == var) || p.start == StartRef::Context;
        };
        // reuse map_paths on a clone to inspect
        visit_pred_paths(pred, &mut check);
        if !clean {
            return None;
        }
    }
    {
        let mut clean = true;
        let mut probe_plan = Plan {
            arity: q.arity,
            n_vars: q.n_vars,
            ops: Op::Unit,
            template: q.template.clone(),
        };
        map_paths(&mut probe_plan, &mut |p| {
            clean &=
                matches!(p.start, StartRef::Var(v) if v == var) || p.start == StartRef::Context;
        });
        if !clean {
            return None;
        }
    }

    // pushed: original scan + filters, template = copy of the match.
    let mut ops = Op::ForEach {
        var,
        path: path.clone(),
        input: Box::new(Op::Unit),
    };
    for pred in filters.iter().rev() {
        ops = Op::Filter {
            pred: (*pred).clone(),
            input: Box::new(ops),
        };
    }
    let pushed = Plan {
        arity: q.arity,
        n_vars: q.n_vars,
        ops,
        template: TemplatePlan::Splice(PathPlan::var(var)),
    };

    // outer: iterate the transferred forest, construct.
    let mut outer = Plan {
        arity: 1,
        n_vars: 1,
        ops: Op::ForEach {
            var: 0,
            path: PathPlan::param(0),
            input: Box::new(Op::Unit),
        },
        template: q.template.clone(),
    };
    rename_var(&mut outer, var, 0);
    Some((outer, pushed))
}

/// Visit every path of a predicate, including paths nested inside step
/// predicates.
fn visit_pred_paths(pred: &PredPlan, f: &mut impl FnMut(&PathPlan)) {
    fn path_deep(p: &PathPlan, f: &mut impl FnMut(&PathPlan)) {
        for s in &p.steps {
            for pr in &s.preds {
                visit_pred_paths(pr, f);
            }
        }
        f(p);
    }
    match pred {
        PredPlan::And(a, b) | PredPlan::Or(a, b) => {
            visit_pred_paths(a, f);
            visit_pred_paths(b, f);
        }
        PredPlan::Not(c) => visit_pred_paths(c, f),
        PredPlan::Cmp { lhs, rhs, .. } => {
            path_deep(lhs, f);
            if let OperandPlan::Path(p) = rhs {
                path_deep(p, f);
            }
        }
        PredPlan::Contains { path, .. } => path_deep(path, f),
        PredPlan::Exists(p) => path_deep(p, f),
        PredPlan::CountCmp { path, .. } => path_deep(path, f),
    }
}

/// Fold a `Filter` that sits directly above a `ForEach` into the scan
/// path's final step predicate, when the filter only looks *downward* from
/// the scanned variable. A purely local rewrite: the plan computes the
/// same results with one fewer operator.
pub fn push_filter_into_path(q: &Plan) -> Option<Plan> {
    // Find the lowest Filter directly above the ForEach it constrains.
    let Op::Filter { pred, input } = find_filter_over_foreach(&q.ops)? else {
        return None;
    };
    let Op::ForEach {
        var,
        path,
        input: scan_input,
    } = &**input
    else {
        return None;
    };
    if path.steps.is_empty() {
        return None; // no step to attach the predicate to
    }
    // Predicate must reference only `var`.
    let mut only_var = true;
    visit_pred_paths(pred, &mut |p| {
        only_var &= matches!(p.start, StartRef::Var(v) if v == *var);
    });
    if !only_var {
        return None;
    }
    // Rewrite `var`-rooted paths to context-rooted.
    let mut rewritten = pred.clone();
    rewrite_pred_to_context(&mut rewritten, *var);
    let mut new_path = path.clone();
    new_path
        .steps
        .last_mut()
        .expect("steps checked non-empty")
        .preds
        .push(rewritten);
    let new_scan = Op::ForEach {
        var: *var,
        path: new_path,
        input: scan_input.clone(),
    };
    let mut out = q.clone();
    replace_filter_over_foreach(&mut out.ops, new_scan);
    Some(out)
}

fn find_filter_over_foreach(op: &Op) -> Option<&Op> {
    match op {
        Op::Filter { input, .. } if matches!(**input, Op::ForEach { .. }) => Some(op),
        _ => op.input().and_then(find_filter_over_foreach),
    }
}

fn replace_filter_over_foreach(op: &mut Op, replacement: Op) {
    let is_target = matches!(op, Op::Filter { input, .. } if matches!(**input, Op::ForEach { .. }));
    if is_target {
        *op = replacement;
        return;
    }
    match op {
        Op::Unit => {}
        Op::ForEach { input, .. } | Op::LetBind { input, .. } | Op::Filter { input, .. } => {
            replace_filter_over_foreach(input, replacement)
        }
    }
}

fn rewrite_pred_to_context(pred: &mut PredPlan, var: VarId) {
    let rewrite = &mut |p: &mut PathPlan| {
        if p.start == StartRef::Var(var) {
            p.start = StartRef::Context;
        }
    };
    fn go(pred: &mut PredPlan, f: &mut impl FnMut(&mut PathPlan)) {
        match pred {
            PredPlan::And(a, b) | PredPlan::Or(a, b) => {
                go(a, f);
                go(b, f);
            }
            PredPlan::Not(c) => go(c, f),
            PredPlan::Cmp { lhs, rhs, .. } => {
                f(lhs);
                if let OperandPlan::Path(p) = rhs {
                    f(p);
                }
            }
            PredPlan::Contains { path, .. } => f(path),
            PredPlan::Exists(p) => f(p),
            PredPlan::CountCmp { path, .. } => f(path),
        }
    }
    go(pred, rewrite);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::NoDocs;
    use crate::lower::lower;
    use crate::parser::parse_query;
    use axml_xml::equiv::forest_equiv;
    use axml_xml::tree::Tree;

    fn plan(src: &str) -> Plan {
        lower(&parse_query(src).unwrap(), 1).unwrap()
    }

    fn catalog() -> Tree {
        Tree::parse(
            r#"<catalog>
                 <pkg name="vim"><size>4000</size></pkg>
                 <pkg name="gcc"><size>90000</size></pkg>
                 <pkg name="vi"><size>100</size></pkg>
               </catalog>"#,
        )
        .unwrap()
    }

    #[test]
    fn decompose_preserves_semantics() {
        let q = plan(
            r#"for $p in $0//pkg where $p/size/text() > 1000
               return <big name="{$p/@name}">{$p/size}</big>"#,
        );
        let (outer, pushed) = decompose_selection(&q).expect("should decompose");
        let input = vec![catalog()];
        let direct = q.eval(std::slice::from_ref(&input), &NoDocs).unwrap();
        let shipped = pushed.eval(&[input], &NoDocs).unwrap();
        let composed = outer.eval(std::slice::from_ref(&shipped), &NoDocs).unwrap();
        assert!(forest_equiv(&direct, &composed));
        // and the pushed result is the smaller selected subset
        assert_eq!(shipped.len(), 2);
    }

    #[test]
    fn decompose_rejects_joins() {
        let q = plan(r#"for $a in $0/x for $b in $0/y return <r>{$a}{$b}</r>"#);
        assert!(decompose_selection(&q).is_none());
    }

    #[test]
    fn decompose_rejects_atom_scans() {
        let q = plan(r#"for $a in $0//pkg/@name return <r>{$a}</r>"#);
        assert!(decompose_selection(&q).is_none());
    }

    #[test]
    fn decompose_rejects_param_in_filter() {
        let q = plan(r#"for $a in $0/x where $1/flag/text() = "on" return {$a}"#);
        // filter mentions $1, not only the variable
        let q2 = Plan { arity: 2, ..q };
        assert!(decompose_selection(&q2).is_none());
    }

    #[test]
    fn decompose_bare_scan_without_filters() {
        let q = plan(r#"for $p in $0//pkg return <n>{$p/@name}</n>"#);
        let (outer, pushed) = decompose_selection(&q).expect("filter-free decompose");
        let input = vec![catalog()];
        let direct = q.eval(std::slice::from_ref(&input), &NoDocs).unwrap();
        let composed = outer
            .eval(&[pushed.eval(&[input], &NoDocs).unwrap()], &NoDocs)
            .unwrap();
        assert!(forest_equiv(&direct, &composed));
    }

    #[test]
    fn push_filter_folds_into_predicate() {
        let q = plan(r#"for $p in $0//pkg where $p/size/text() > 1000 return {$p/@name}"#);
        let folded = push_filter_into_path(&q).expect("should fold");
        assert_eq!(folded.ops.chain_len(), 2, "Filter merged away");
        let direct = q.eval(&[vec![catalog()]], &NoDocs).unwrap();
        let opt = folded.eval(&[vec![catalog()]], &NoDocs).unwrap();
        assert!(forest_equiv(&direct, &opt));
    }

    #[test]
    fn push_filter_rejects_cross_var() {
        let q = plan(r#"for $a in $0/x for $b in $0/y where $a/k = $b/k return <r/>"#);
        assert!(push_filter_into_path(&q).is_none());
    }

    #[test]
    fn push_filter_rejects_stepless_scan() {
        let q = plan(r#"for $t in $0 where $t/k/text() = "1" return {$t}"#);
        assert!(push_filter_into_path(&q).is_none());
    }

    #[test]
    fn rename_var_rewrites_starts() {
        let mut q = plan(r#"for $p in $0//pkg return <n>{$p/@name}</n>"#);
        rename_var(&mut q, 0, 7);
        let mut seen = false;
        map_paths(&mut q, &mut |p| {
            if p.start == StartRef::Var(7) {
                seen = true;
            }
            assert_ne!(p.start, StartRef::Var(0));
        });
        assert!(seen);
    }
}
