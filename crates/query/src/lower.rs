//! Lowering: surface AST → logical plan.
//!
//! Performs name resolution (`$x` → variable slots, `$N` → parameters,
//! relative predicate paths → [`StartRef::Context`]), checks variable
//! scoping and duplicate bindings, enforces that `@attr`/`text()` only
//! appear as final steps, and computes the query arity.

use crate::ast::{self, AttrTemplate, Clause, Cond, Operand, QueryBody, Template, REL_VAR};
use crate::error::{QueryError, QueryResult};
use crate::plan::{
    AttrTplPlan, Op, OperandPlan, PathPlan, Plan, PlanStep, PlanTest, PredPlan, SourceRef,
    StartRef, TemplatePlan,
};
use axml_xml::ids::DocName;
use axml_xml::label::Label;
use std::collections::HashMap;

/// Lower a parsed query body into a plan. `min_arity` lets callers force a
/// larger arity than the parameters actually referenced.
pub fn lower(body: &QueryBody, min_arity: usize) -> QueryResult<Plan> {
    let mut lw = Lower {
        vars: HashMap::new(),
        n_vars: 0,
        max_param: None,
    };
    let plan = match body {
        QueryBody::Bare(path) => {
            // `$0//pkg` desugars to `for $·bare· in $0//pkg return {$·bare·}`.
            let var = lw.fresh();
            let path = lw.path(path, false)?;
            Plan {
                arity: 0, // fixed below
                n_vars: lw.n_vars,
                ops: Op::ForEach {
                    var,
                    path,
                    input: Box::new(Op::Unit),
                },
                template: TemplatePlan::Splice(PathPlan::var(var)),
            }
        }
        QueryBody::Flwr { clauses, ret } => {
            let mut ops = Op::Unit;
            for clause in clauses {
                ops = match clause {
                    Clause::For { var, source } => {
                        let path = lw.path(source, false)?;
                        let slot = lw.bind(var)?;
                        Op::ForEach {
                            var: slot,
                            path,
                            input: Box::new(ops),
                        }
                    }
                    Clause::Let { var, path } => {
                        let path = lw.path(path, false)?;
                        let slot = lw.bind(var)?;
                        Op::LetBind {
                            var: slot,
                            path,
                            input: Box::new(ops),
                        }
                    }
                    Clause::Where(cond) => Op::Filter {
                        pred: lw.cond(cond, false)?,
                        input: Box::new(ops),
                    },
                };
            }
            let template = lw.template(ret)?;
            Plan {
                arity: 0,
                n_vars: lw.n_vars,
                ops,
                template,
            }
        }
    };
    let arity = lw.max_param.map(|m| m + 1).unwrap_or(0).max(min_arity);
    Ok(Plan { arity, ..plan })
}

struct Lower {
    vars: HashMap<String, usize>,
    n_vars: usize,
    max_param: Option<usize>,
}

impl Lower {
    fn fresh(&mut self) -> usize {
        let v = self.n_vars;
        self.n_vars += 1;
        v
    }

    fn bind(&mut self, name: &str) -> QueryResult<usize> {
        if self.vars.contains_key(name) {
            return Err(QueryError::DuplicateVariable(format!("${name}")));
        }
        let v = self.fresh();
        self.vars.insert(name.to_string(), v);
        Ok(v)
    }

    fn path(&mut self, p: &ast::Path, in_pred: bool) -> QueryResult<PathPlan> {
        let start = match &p.start {
            ast::PathStart::Param(i) => {
                self.max_param = Some(self.max_param.map_or(*i, |m| m.max(*i)));
                StartRef::Source(SourceRef::Param(*i))
            }
            ast::PathStart::Var(v) if v == REL_VAR => {
                if !in_pred {
                    return Err(QueryError::UnboundVariable(
                        "relative path outside a predicate".into(),
                    ));
                }
                StartRef::Context
            }
            ast::PathStart::Var(v) => match self.vars.get(v) {
                Some(&slot) => StartRef::Var(slot),
                None => return Err(QueryError::UnboundVariable(format!("${v}"))),
            },
            ast::PathStart::Doc(d) => StartRef::Source(SourceRef::Doc(DocName::new(d))),
        };
        let mut steps = Vec::with_capacity(p.steps.len());
        for (i, s) in p.steps.iter().enumerate() {
            let test = match &s.test {
                ast::NodeTest::Label(l) => PlanTest::Label(Label::new(l)),
                ast::NodeTest::Wildcard => PlanTest::Wildcard,
                ast::NodeTest::Text => PlanTest::Text,
                ast::NodeTest::Attr(a) => PlanTest::Attr(Label::new(a)),
            };
            let terminal = matches!(test, PlanTest::Text | PlanTest::Attr(_));
            if terminal && i + 1 != p.steps.len() {
                return Err(QueryError::NotApplicable(format!(
                    "`{}` must be the final step of a path",
                    s.test
                )));
            }
            if terminal && !s.preds.is_empty() {
                return Err(QueryError::NotApplicable(
                    "predicates are not allowed on `@attr`/`text()` steps".into(),
                ));
            }
            let preds = s
                .preds
                .iter()
                .map(|c| self.cond(c, true))
                .collect::<QueryResult<Vec<_>>>()?;
            steps.push(PlanStep {
                axis: s.axis,
                test,
                preds,
            });
        }
        Ok(PathPlan { start, steps })
    }

    fn cond(&mut self, c: &Cond, in_pred: bool) -> QueryResult<PredPlan> {
        Ok(match c {
            Cond::And(a, b) => PredPlan::And(
                Box::new(self.cond(a, in_pred)?),
                Box::new(self.cond(b, in_pred)?),
            ),
            Cond::Or(a, b) => PredPlan::Or(
                Box::new(self.cond(a, in_pred)?),
                Box::new(self.cond(b, in_pred)?),
            ),
            Cond::Not(x) => PredPlan::Not(Box::new(self.cond(x, in_pred)?)),
            Cond::Cmp { lhs, op, rhs } => PredPlan::Cmp {
                lhs: self.path(lhs, in_pred)?,
                op: *op,
                rhs: match rhs {
                    Operand::Literal(l) => OperandPlan::Literal(l.clone()),
                    Operand::Path(p) => OperandPlan::Path(self.path(p, in_pred)?),
                },
            },
            Cond::Contains { path, needle } => PredPlan::Contains {
                path: self.path(path, in_pred)?,
                needle: needle.clone(),
            },
            Cond::Exists(p) => PredPlan::Exists(self.path(p, in_pred)?),
            Cond::CountCmp { path, op, n } => PredPlan::CountCmp {
                path: self.path(path, in_pred)?,
                op: *op,
                n: *n,
            },
        })
    }

    fn template(&mut self, t: &Template) -> QueryResult<TemplatePlan> {
        Ok(match t {
            Template::Element {
                label,
                attrs,
                children,
            } => TemplatePlan::Element {
                label: Label::new(label),
                attrs: attrs
                    .iter()
                    .map(|(n, v)| {
                        Ok((
                            Label::new(n),
                            match v {
                                AttrTemplate::Literal(s) => AttrTplPlan::Literal(s.clone()),
                                AttrTemplate::Splice(p) => {
                                    AttrTplPlan::Splice(self.path(p, false)?)
                                }
                            },
                        ))
                    })
                    .collect::<QueryResult<Vec<_>>>()?,
                children: children
                    .iter()
                    .map(|c| self.template(c))
                    .collect::<QueryResult<Vec<_>>>()?,
            },
            Template::Text(s) => TemplatePlan::Text(s.clone()),
            Template::Splice(p) => TemplatePlan::Splice(self.path(p, false)?),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;

    fn lower_src(src: &str) -> QueryResult<Plan> {
        lower(&parse_query(src).unwrap(), 0)
    }

    #[test]
    fn lowers_flwr() {
        let p = lower_src(r#"for $x in $0//pkg where $x/@name = "vim" return {$x}"#).unwrap();
        assert_eq!(p.arity, 1);
        assert_eq!(p.n_vars, 1);
        assert!(matches!(p.ops, Op::Filter { .. }));
        assert_eq!(p.scans_of_param(0), 1);
    }

    #[test]
    fn lowers_bare_path() {
        let p = lower_src("$1//pkg").unwrap();
        assert_eq!(p.arity, 2, "arity covers $0 and $1");
        assert!(matches!(p.ops, Op::ForEach { .. }));
        assert!(matches!(p.template, TemplatePlan::Splice(_)));
    }

    #[test]
    fn min_arity_respected() {
        let p = lower(&parse_query("$0/a").unwrap(), 3).unwrap();
        assert_eq!(p.arity, 3);
    }

    #[test]
    fn unbound_variable_rejected() {
        let e = lower_src("for $x in $0 return {$y}").unwrap_err();
        assert!(matches!(e, QueryError::UnboundVariable(v) if v == "$y"));
    }

    #[test]
    fn duplicate_variable_rejected() {
        let e = lower_src("for $x in $0 for $x in $1 return {$x}").unwrap_err();
        assert!(matches!(e, QueryError::DuplicateVariable(_)));
    }

    #[test]
    fn scoping_is_sequential() {
        // $b defined after its use in $a's clause — rejected.
        let e = lower_src("for $a in $b/x for $b in $0 return {$a}").unwrap_err();
        assert!(matches!(e, QueryError::UnboundVariable(_)));
        // and the valid order works
        lower_src("for $b in $0 for $a in $b/x return {$a}").unwrap();
    }

    #[test]
    fn relative_path_only_in_predicates() {
        lower_src(r#"for $x in $0//pkg[version = "1"] return {$x}"#).unwrap();
        // Parser only produces REL_VAR paths inside predicates, so an
        // unbound plain name in `where` is an unbound variable.
        let e = lower_src(r#"for $x in $0 where $y/v = "1" return {$x}"#).unwrap_err();
        assert!(matches!(e, QueryError::UnboundVariable(_)));
    }

    #[test]
    fn terminal_step_enforced() {
        let e = lower_src("for $x in $0/@id/sub return {$x}").unwrap_err();
        assert!(matches!(e, QueryError::NotApplicable(_)));
        let e2 = lower_src("for $x in $0/text()/y return {$x}").unwrap_err();
        assert!(matches!(e2, QueryError::NotApplicable(_)));
    }

    #[test]
    fn doc_source_lowered() {
        let p = lower_src(r#"for $x in doc("cat")/pkg return {$x}"#).unwrap();
        assert_eq!(p.arity, 0);
        if let Op::ForEach { path, .. } = &p.ops {
            assert!(matches!(
                &path.start,
                StartRef::Source(SourceRef::Doc(d)) if d.as_str() == "cat"
            ));
        } else {
            panic!("expected ForEach");
        }
    }

    #[test]
    fn join_lowering() {
        let p =
            lower_src(r#"for $a in $0/x for $b in $1/y where $a/k = $b/k return <j>{$a}{$b}</j>"#)
                .unwrap();
        assert_eq!(p.arity, 2);
        assert_eq!(p.n_vars, 2);
        assert_eq!(p.ops.chain_len(), 4);
        if let Op::Filter { pred, .. } = &p.ops {
            let mut vars = pred.referenced_vars();
            vars.sort_unstable();
            assert_eq!(vars, vec![0, 1]);
        } else {
            panic!("expected Filter on top");
        }
    }

    #[test]
    fn let_lowering() {
        let p = lower_src("let $all := $0//pkg where exists($all) return <n>{$all}</n>").unwrap();
        let mut found_let = false;
        let mut cur = Some(&p.ops);
        while let Some(op) = cur {
            if matches!(op, Op::LetBind { .. }) {
                found_let = true;
            }
            cur = op.input();
        }
        assert!(found_let);
    }
}
