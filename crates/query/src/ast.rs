//! Surface abstract syntax of the query language.
//!
//! The grammar (see [`crate::parser`]) is a compact FLWR fragment:
//!
//! ```text
//! query    ::= flwr | path
//! flwr     ::= clause+ 'return' template
//! clause   ::= 'for' '$'name 'in' path
//!            | 'let' '$'name ':=' path
//!            | 'where' cond
//! path     ::= start step*
//! start    ::= '$'N          (parameter N)
//!            | '$'name       (bound variable)
//!            | 'doc' '(' string ')'
//! step     ::= '/' test pred* | '//' test pred*
//! test     ::= name | '*' | 'text()' | '@'name
//! pred     ::= '[' cond ']'
//! cond     ::= or-combination of comparisons, contains(), exists(),
//!              count(path) op N
//! template ::= '<'name attrs'>' (template | '{' path '}' | text)* '</'name'>'
//! ```
//!
//! Every AST node renders back to source via `Display`; `parse(render(q))`
//! yields the same AST (property-tested), which is how queries travel as
//! text inside serialized expressions (§3.1 of the paper).

use std::fmt;

/// The reserved variable name used internally for relative (context) paths
/// inside predicates. The parser rewrites `version = "1"` into a path
/// starting at this variable; lowering binds it to the predicate's context
/// node, and `Display` renders such paths back in relative form.
pub const REL_VAR: &str = "\u{b7}ctx\u{b7}";

/// Where a path starts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PathStart {
    /// `$N` — the N-th query parameter (a forest of input trees).
    Param(usize),
    /// `$name` — a variable bound by an enclosing `for`/`let`.
    Var(String),
    /// `doc("name")` — a document resolved by the evaluation context.
    Doc(String),
}

/// Navigation axis of a step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Axis {
    /// `/` — children.
    Child,
    /// `//` — descendants (excluding self).
    Descendant,
}

/// What a step selects.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeTest {
    /// A child/descendant element with this label.
    Label(String),
    /// Any element: `*`.
    Wildcard,
    /// `text()` — string value of the context node (terminal step).
    Text,
    /// `@name` — attribute value (terminal step).
    Attr(String),
}

/// One path step with optional predicates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Step {
    /// Axis.
    pub axis: Axis,
    /// Node test.
    pub test: NodeTest,
    /// Bracketed predicates, all of which must hold.
    pub preds: Vec<Cond>,
}

/// A path expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Path {
    /// Starting point.
    pub start: PathStart,
    /// Steps applied left to right.
    pub steps: Vec<Step>,
}

impl Path {
    /// A bare reference to a parameter or variable (no steps).
    pub fn start_only(start: PathStart) -> Self {
        Path {
            start,
            steps: Vec::new(),
        }
    }
}

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// Surface token.
    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }
}

/// Right-hand side of a comparison.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Operand {
    /// A string literal.
    Literal(String),
    /// Another path (joins!).
    Path(Path),
}

/// A boolean condition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Cond {
    /// Conjunction.
    And(Box<Cond>, Box<Cond>),
    /// Disjunction.
    Or(Box<Cond>, Box<Cond>),
    /// Negation: `not(c)`.
    Not(Box<Cond>),
    /// Existential comparison between the atomized `lhs` and `rhs`.
    Cmp {
        /// Left side path.
        lhs: Path,
        /// Operator.
        op: CmpOp,
        /// Right side.
        rhs: Operand,
    },
    /// `contains(path, "needle")` — substring test on any atom of `path`.
    Contains {
        /// The haystack path.
        path: Path,
        /// The literal needle.
        needle: String,
    },
    /// `exists(path)` — the path matches at least one node/atom.
    Exists(Path),
    /// `count(path) op N` — cardinality comparison (aggregate).
    CountCmp {
        /// The counted path.
        path: Path,
        /// Operator.
        op: CmpOp,
        /// The literal bound.
        n: u64,
    },
}

/// One FLWR clause.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Clause {
    /// `for $var in path` — iterate matches one at a time.
    For {
        /// Variable name (without `$`).
        var: String,
        /// Source path.
        source: Path,
    },
    /// `let $var := path` — bind the whole match sequence.
    Let {
        /// Variable name (without `$`).
        var: String,
        /// Bound path.
        path: Path,
    },
    /// `where cond` — filter.
    Where(Cond),
}

/// An XML construction template.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Template {
    /// `<label attr=…>children</label>`.
    Element {
        /// Element label.
        label: String,
        /// Attributes; values may be literals or spliced paths.
        attrs: Vec<(String, AttrTemplate)>,
        /// Children templates.
        children: Vec<Template>,
    },
    /// Literal text.
    Text(String),
    /// `{ path }` — copy every node matched by the path (elements are
    /// deep-copied; atoms become text nodes).
    Splice(Path),
}

/// An attribute value in a template.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AttrTemplate {
    /// A literal string.
    Literal(String),
    /// `{ path }` — the space-joined atomization of the path.
    Splice(Path),
}

/// A complete parsed query body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryBody {
    /// A full FLWR block.
    Flwr {
        /// The clauses in order.
        clauses: Vec<Clause>,
        /// The `return` template.
        ret: Template,
    },
    /// A bare path: shorthand for *copy every match*.
    Bare(Path),
}

// ---------------------------------------------------------------------
// Rendering back to source.
// ---------------------------------------------------------------------

impl fmt::Display for PathStart {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PathStart::Param(i) => write!(f, "${i}"),
            PathStart::Var(v) => write!(f, "${v}"),
            PathStart::Doc(d) => write!(f, "doc(\"{d}\")"),
        }
    }
}

impl fmt::Display for NodeTest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeTest::Label(l) => f.write_str(l),
            NodeTest::Wildcard => f.write_str("*"),
            NodeTest::Text => f.write_str("text()"),
            NodeTest::Attr(a) => write!(f, "@{a}"),
        }
    }
}

impl fmt::Display for Step {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.axis {
            Axis::Child => write!(f, "/{}", self.test)?,
            Axis::Descendant => write!(f, "//{}", self.test)?,
        }
        for p in &self.preds {
            write!(f, "[{p}]")?;
        }
        Ok(())
    }
}

impl fmt::Display for Path {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut steps = self.steps.as_slice();
        match &self.start {
            // Relative predicate paths render without the internal context
            // variable: `version[…]/x`, not `$·ctx·/version[…]/x`.
            PathStart::Var(v) if v == REL_VAR => {
                if let Some((first, rest)) = steps.split_first() {
                    write!(f, "{}", first.test)?;
                    for p in &first.preds {
                        write!(f, "[{p}]")?;
                    }
                    steps = rest;
                } else {
                    // A bare context reference cannot be parsed back; it is
                    // never produced by the parser.
                    write!(f, ".")?;
                }
            }
            start => write!(f, "{start}")?,
        }
        for s in steps {
            write!(f, "{s}")?;
        }
        Ok(())
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Literal(s) => write!(f, "\"{}\"", escape_lit(s)),
            Operand::Path(p) => write!(f, "{p}"),
        }
    }
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Cond::And(a, b) => write!(f, "({a} and {b})"),
            Cond::Or(a, b) => write!(f, "({a} or {b})"),
            Cond::Not(c) => write!(f, "not({c})"),
            Cond::Cmp { lhs, op, rhs } => write!(f, "{lhs} {} {rhs}", op.symbol()),
            Cond::Contains { path, needle } => {
                write!(f, "contains({path}, \"{}\")", escape_lit(needle))
            }
            Cond::Exists(p) => write!(f, "exists({p})"),
            Cond::CountCmp { path, op, n } => {
                write!(f, "count({path}) {} {n}", op.symbol())
            }
        }
    }
}

impl fmt::Display for Clause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Clause::For { var, source } => write!(f, "for ${var} in {source}"),
            Clause::Let { var, path } => write!(f, "let ${var} := {path}"),
            Clause::Where(c) => write!(f, "where {c}"),
        }
    }
}

impl fmt::Display for AttrTemplate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttrTemplate::Literal(s) => write!(f, "\"{}\"", escape_lit(s)),
            AttrTemplate::Splice(p) => write!(f, "\"{{{p}}}\""),
        }
    }
}

impl fmt::Display for Template {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Template::Element {
                label,
                attrs,
                children,
            } => {
                write!(f, "<{label}")?;
                for (n, v) in attrs {
                    write!(f, " {n}={v}")?;
                }
                if children.is_empty() {
                    write!(f, "/>")
                } else {
                    write!(f, ">")?;
                    for c in children {
                        write!(f, "{c}")?;
                    }
                    write!(f, "</{label}>")
                }
            }
            Template::Text(t) => f.write_str(&escape_template_text(t)),
            Template::Splice(p) => write!(f, "{{{p}}}"),
        }
    }
}

impl fmt::Display for QueryBody {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryBody::Flwr { clauses, ret } => {
                for c in clauses {
                    write!(f, "{c} ")?;
                }
                write!(f, "return {ret}")
            }
            QueryBody::Bare(p) => write!(f, "{p}"),
        }
    }
}

fn escape_lit(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn escape_template_text(s: &str) -> String {
    // `&` first (it appears in the other escapes), then `<`, `{`, `}`.
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('{', "{{")
        .replace('}', "}}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(start: PathStart, steps: Vec<Step>) -> Path {
        Path { start, steps }
    }

    fn step(axis: Axis, test: NodeTest) -> Step {
        Step {
            axis,
            test,
            preds: vec![],
        }
    }

    #[test]
    fn path_rendering() {
        let path = p(
            PathStart::Param(0),
            vec![
                step(Axis::Descendant, NodeTest::Label("pkg".into())),
                step(Axis::Child, NodeTest::Attr("name".into())),
            ],
        );
        assert_eq!(path.to_string(), "$0//pkg/@name");
    }

    #[test]
    fn cond_rendering() {
        let c = Cond::And(
            Box::new(Cond::Cmp {
                lhs: p(
                    PathStart::Var("x".into()),
                    vec![step(Axis::Child, NodeTest::Label("v".into()))],
                ),
                op: CmpOp::Ge,
                rhs: Operand::Literal("2".into()),
            }),
            Box::new(Cond::Exists(p(PathStart::Var("x".into()), vec![]))),
        );
        assert_eq!(c.to_string(), r#"($x/v >= "2" and exists($x))"#);
    }

    #[test]
    fn template_rendering() {
        let t = Template::Element {
            label: "hit".into(),
            attrs: vec![(
                "name".into(),
                AttrTemplate::Splice(p(
                    PathStart::Var("x".into()),
                    vec![step(Axis::Child, NodeTest::Attr("name".into()))],
                )),
            )],
            children: vec![
                Template::Text("score: ".into()),
                Template::Splice(p(PathStart::Var("x".into()), vec![])),
            ],
        };
        assert_eq!(t.to_string(), r#"<hit name="{$x/@name}">score: {$x}</hit>"#);
    }

    #[test]
    fn flwr_rendering() {
        let body = QueryBody::Flwr {
            clauses: vec![
                Clause::For {
                    var: "x".into(),
                    source: p(
                        PathStart::Param(0),
                        vec![step(Axis::Descendant, NodeTest::Label("pkg".into()))],
                    ),
                },
                Clause::Where(Cond::Contains {
                    path: p(
                        PathStart::Var("x".into()),
                        vec![step(Axis::Child, NodeTest::Attr("name".into()))],
                    ),
                    needle: "vi".into(),
                }),
            ],
            ret: Template::Splice(p(PathStart::Var("x".into()), vec![])),
        };
        assert_eq!(
            body.to_string(),
            r#"for $x in $0//pkg where contains($x/@name, "vi") return {$x}"#
        );
    }

    #[test]
    fn literal_escaping() {
        let c = Cond::Cmp {
            lhs: p(PathStart::Param(0), vec![]),
            op: CmpOp::Eq,
            rhs: Operand::Literal(r#"say "hi"\now"#.into()),
        };
        let rendered = c.to_string();
        assert!(rendered.contains(r#"\"hi\""#), "{rendered}");
        assert!(rendered.contains(r"\\now"), "{rendered}");
    }

    #[test]
    fn cmp_symbols() {
        assert_eq!(CmpOp::Eq.symbol(), "=");
        assert_eq!(CmpOp::Ne.symbol(), "!=");
        assert_eq!(CmpOp::Lt.symbol(), "<");
        assert_eq!(CmpOp::Le.symbol(), "<=");
        assert_eq!(CmpOp::Gt.symbol(), ">");
        assert_eq!(CmpOp::Ge.symbol(), ">=");
    }
}
