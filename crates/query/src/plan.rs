//! The logical algebra: query plans.
//!
//! A [`Plan`] is a chain of operators feeding a construction template:
//!
//! ```text
//! Construct(template)
//!   └─ Filter(pred)            (0..n of these, in any position)
//!        └─ ForEach($x ← path) (one per `for` clause)
//!             └─ Unit
//! ```
//!
//! Operators consume and produce *binding tuples* (assignments of variables
//! to nodes/atoms/sequences). `Unit` emits the single empty tuple; each
//! `ForEach` flat-maps a path over its input tuples; `Construct` turns each
//! surviving tuple into one (or more, for bare splices) result trees.
//!
//! Plans are plain data with structural equality — the rewrite rules of
//! [`crate::rewrite`] and the distributed optimizer of `axml-core`
//! manipulate them directly, DataFusion-style.

use crate::ast::{Axis, CmpOp};
use axml_xml::ids::DocName;
use axml_xml::label::Label;
use std::fmt;

/// Index of a variable slot in the binding tuple.
pub type VarId = usize;

/// An external input of the plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SourceRef {
    /// The `i`-th query parameter (a forest).
    Param(usize),
    /// A named document, resolved at evaluation time.
    Doc(DocName),
}

/// Where a compiled path starts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StartRef {
    /// An external source.
    Source(SourceRef),
    /// A bound variable.
    Var(VarId),
    /// The context node of the enclosing predicate.
    Context,
}

/// Compiled node test.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanTest {
    /// Element with this label.
    Label(Label),
    /// Any element.
    Wildcard,
    /// String value (terminal).
    Text,
    /// Attribute value (terminal).
    Attr(Label),
}

/// One compiled path step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanStep {
    /// Axis.
    pub axis: Axis,
    /// Test.
    pub test: PlanTest,
    /// Predicates (context = the candidate node).
    pub preds: Vec<PredPlan>,
}

/// A compiled path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathPlan {
    /// Start.
    pub start: StartRef,
    /// Steps.
    pub steps: Vec<PlanStep>,
}

impl PathPlan {
    /// A path that just references a variable.
    pub fn var(v: VarId) -> Self {
        PathPlan {
            start: StartRef::Var(v),
            steps: Vec::new(),
        }
    }

    /// A path that scans a parameter's forest roots.
    pub fn param(i: usize) -> Self {
        PathPlan {
            start: StartRef::Source(SourceRef::Param(i)),
            steps: Vec::new(),
        }
    }

    /// Does any part of this path (including nested predicates) reference
    /// the given parameter?
    pub fn references_param(&self, i: usize) -> bool {
        if self.start == StartRef::Source(SourceRef::Param(i)) {
            return true;
        }
        self.steps
            .iter()
            .any(|s| s.preds.iter().any(|p| p.references_param(i)))
    }

    /// Does this path (including nested predicates) reference variable `v`?
    pub fn references_var(&self, v: VarId) -> bool {
        if self.start == StartRef::Var(v) {
            return true;
        }
        self.steps
            .iter()
            .any(|s| s.preds.iter().any(|p| p.references_var(v)))
    }
}

/// Compiled comparison operand.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OperandPlan {
    /// Literal string.
    Literal(String),
    /// Path.
    Path(PathPlan),
}

/// Compiled boolean predicate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PredPlan {
    /// Conjunction.
    And(Box<PredPlan>, Box<PredPlan>),
    /// Disjunction.
    Or(Box<PredPlan>, Box<PredPlan>),
    /// Negation.
    Not(Box<PredPlan>),
    /// Existential comparison.
    Cmp {
        /// Left path.
        lhs: PathPlan,
        /// Operator.
        op: CmpOp,
        /// Right operand.
        rhs: OperandPlan,
    },
    /// Substring test.
    Contains {
        /// Haystack path.
        path: PathPlan,
        /// Needle.
        needle: String,
    },
    /// Non-emptiness test.
    Exists(PathPlan),
    /// Cardinality comparison: `count(path) op n`.
    CountCmp {
        /// Counted path.
        path: PathPlan,
        /// Operator.
        op: CmpOp,
        /// Bound.
        n: u64,
    },
}

impl PredPlan {
    fn paths(&self, f: &mut impl FnMut(&PathPlan)) {
        match self {
            PredPlan::And(a, b) | PredPlan::Or(a, b) => {
                a.paths(f);
                b.paths(f);
            }
            PredPlan::Not(c) => c.paths(f),
            PredPlan::Cmp { lhs, rhs, .. } => {
                f(lhs);
                if let OperandPlan::Path(p) = rhs {
                    f(p);
                }
            }
            PredPlan::Contains { path, .. } => f(path),
            PredPlan::Exists(p) => f(p),
            PredPlan::CountCmp { path, .. } => f(path),
        }
    }

    /// Does the predicate reference parameter `i` anywhere?
    pub fn references_param(&self, i: usize) -> bool {
        let mut found = false;
        self.paths(&mut |p| found |= p.references_param(i));
        found
    }

    /// Does the predicate reference variable `v` anywhere?
    pub fn references_var(&self, v: VarId) -> bool {
        let mut found = false;
        self.paths(&mut |p| found |= p.references_var(v));
        found
    }

    /// Variables referenced, in no particular order.
    pub fn referenced_vars(&self) -> Vec<VarId> {
        let mut vars = Vec::new();
        self.paths(&mut |p| {
            if let StartRef::Var(v) = p.start {
                if !vars.contains(&v) {
                    vars.push(v);
                }
            }
        });
        vars
    }
}

/// Compiled construction template.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TemplatePlan {
    /// An element with attribute and child templates.
    Element {
        /// Label.
        label: Label,
        /// Attributes.
        attrs: Vec<(Label, AttrTplPlan)>,
        /// Children.
        children: Vec<TemplatePlan>,
    },
    /// Literal text.
    Text(String),
    /// Copy every node/atom the path yields.
    Splice(PathPlan),
}

impl TemplatePlan {
    fn paths(&self, f: &mut impl FnMut(&PathPlan)) {
        match self {
            TemplatePlan::Element {
                attrs, children, ..
            } => {
                for (_, a) in attrs {
                    if let AttrTplPlan::Splice(p) = a {
                        f(p);
                    }
                }
                for c in children {
                    c.paths(f);
                }
            }
            TemplatePlan::Text(_) => {}
            TemplatePlan::Splice(p) => f(p),
        }
    }

    /// Variables referenced by the template.
    pub fn referenced_vars(&self) -> Vec<VarId> {
        let mut vars = Vec::new();
        self.paths(&mut |p| {
            if let StartRef::Var(v) = p.start {
                if !vars.contains(&v) {
                    vars.push(v);
                }
            }
        });
        vars
    }

    /// Does the template reference parameter `i`?
    pub fn references_param(&self, i: usize) -> bool {
        let mut found = false;
        self.paths(&mut |p| found |= p.references_param(i));
        found
    }
}

/// Compiled attribute template.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AttrTplPlan {
    /// Literal value.
    Literal(String),
    /// Space-joined atomization of a path.
    Splice(PathPlan),
}

/// A plan operator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    /// Emits one empty binding tuple.
    Unit,
    /// Flat-maps `path` over input tuples, binding each match to `var`.
    ForEach {
        /// Bound variable slot.
        var: VarId,
        /// Source path.
        path: PathPlan,
        /// Upstream operator.
        input: Box<Op>,
    },
    /// Binds `var` to the whole match sequence of `path`.
    LetBind {
        /// Bound variable slot.
        var: VarId,
        /// Bound path.
        path: PathPlan,
        /// Upstream operator.
        input: Box<Op>,
    },
    /// Keeps tuples satisfying `pred`.
    Filter {
        /// The predicate.
        pred: PredPlan,
        /// Upstream operator.
        input: Box<Op>,
    },
}

impl Op {
    /// Upstream operator, if any.
    pub fn input(&self) -> Option<&Op> {
        match self {
            Op::Unit => None,
            Op::ForEach { input, .. } | Op::LetBind { input, .. } | Op::Filter { input, .. } => {
                Some(input)
            }
        }
    }

    /// Depth of the operator chain (Unit = 1).
    pub fn chain_len(&self) -> usize {
        1 + self.input().map_or(0, Op::chain_len)
    }

    /// Visit every path in this operator chain (not templates).
    pub fn for_each_path(&self, f: &mut impl FnMut(&PathPlan)) {
        match self {
            Op::Unit => {}
            Op::ForEach { path, input, .. } | Op::LetBind { path, input, .. } => {
                f(path);
                path.steps
                    .iter()
                    .for_each(|s| s.preds.iter().for_each(|p| p.paths(f)));
                input.for_each_path(f);
            }
            Op::Filter { pred, input } => {
                pred.paths(f);
                input.for_each_path(f);
            }
        }
    }
}

/// A complete compiled query plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Plan {
    /// Number of input parameters (`$0 … $arity-1`).
    pub arity: usize,
    /// Number of variable slots used by the operator chain.
    pub n_vars: usize,
    /// The binding-producing chain.
    pub ops: Op,
    /// The output template.
    pub template: TemplatePlan,
}

impl Plan {
    /// How many `ForEach`/`LetBind` operators scan parameter `i` directly
    /// (their path *starts* at the parameter).
    pub fn scans_of_param(&self, i: usize) -> usize {
        let mut n = 0;
        let mut cur = Some(&self.ops);
        while let Some(op) = cur {
            if let Op::ForEach { path, .. } | Op::LetBind { path, .. } = op {
                if path.start == StartRef::Source(SourceRef::Param(i)) {
                    n += 1;
                }
            }
            cur = op.input();
        }
        n
    }

    /// Does the plan reference parameter `i` anywhere at all (scan,
    /// predicate or template)?
    pub fn references_param(&self, i: usize) -> bool {
        let mut found = self.template.references_param(i);
        self.ops
            .for_each_path(&mut |p| found |= p.references_param(i));
        found
    }
}

// ------------------------------------------------------------------
// Display (EXPLAIN output)
// ------------------------------------------------------------------

impl fmt::Display for StartRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StartRef::Source(SourceRef::Param(i)) => write!(f, "${i}"),
            StartRef::Source(SourceRef::Doc(d)) => write!(f, "doc({d})"),
            StartRef::Var(v) => write!(f, "?{v}"),
            StartRef::Context => write!(f, "."),
        }
    }
}

impl fmt::Display for PathPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.start)?;
        for s in &self.steps {
            let sep = match s.axis {
                Axis::Child => "/",
                Axis::Descendant => "//",
            };
            match &s.test {
                PlanTest::Label(l) => write!(f, "{sep}{l}")?,
                PlanTest::Wildcard => write!(f, "{sep}*")?,
                PlanTest::Text => write!(f, "{sep}text()")?,
                PlanTest::Attr(a) => write!(f, "{sep}@{a}")?,
            }
            for p in &s.preds {
                write!(f, "[{p}]")?;
            }
        }
        Ok(())
    }
}

impl fmt::Display for PredPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PredPlan::And(a, b) => write!(f, "({a} and {b})"),
            PredPlan::Or(a, b) => write!(f, "({a} or {b})"),
            PredPlan::Not(c) => write!(f, "not({c})"),
            PredPlan::Cmp { lhs, op, rhs } => match rhs {
                OperandPlan::Literal(l) => write!(f, "{lhs} {} \"{l}\"", op.symbol()),
                OperandPlan::Path(p) => write!(f, "{lhs} {} {p}", op.symbol()),
            },
            PredPlan::Contains { path, needle } => write!(f, "contains({path}, \"{needle}\")"),
            PredPlan::Exists(p) => write!(f, "exists({p})"),
            PredPlan::CountCmp { path, op, n } => {
                write!(f, "count({path}) {} {n}", op.symbol())
            }
        }
    }
}

impl fmt::Display for Plan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Construct")?;
        let mut cur = Some(&self.ops);
        let mut depth = 1;
        while let Some(op) = cur {
            let pad = "  ".repeat(depth);
            match op {
                Op::Unit => writeln!(f, "{pad}Unit")?,
                Op::ForEach { var, path, .. } => writeln!(f, "{pad}ForEach ?{var} ← {path}")?,
                Op::LetBind { var, path, .. } => writeln!(f, "{pad}Let ?{var} := {path}")?,
                Op::Filter { pred, .. } => writeln!(f, "{pad}Filter {pred}")?,
            }
            cur = op.input();
            depth += 1;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_plan() -> Plan {
        // for ?0 in $0//pkg where ?0/@name = "vim" return <hit>{?0}</hit>
        let scan = Op::ForEach {
            var: 0,
            path: PathPlan {
                start: StartRef::Source(SourceRef::Param(0)),
                steps: vec![PlanStep {
                    axis: Axis::Descendant,
                    test: PlanTest::Label(Label::new("pkg")),
                    preds: vec![],
                }],
            },
            input: Box::new(Op::Unit),
        };
        let filt = Op::Filter {
            pred: PredPlan::Cmp {
                lhs: PathPlan {
                    start: StartRef::Var(0),
                    steps: vec![PlanStep {
                        axis: Axis::Child,
                        test: PlanTest::Attr(Label::new("name")),
                        preds: vec![],
                    }],
                },
                op: CmpOp::Eq,
                rhs: OperandPlan::Literal("vim".into()),
            },
            input: Box::new(scan),
        };
        Plan {
            arity: 1,
            n_vars: 1,
            ops: filt,
            template: TemplatePlan::Element {
                label: Label::new("hit"),
                attrs: vec![],
                children: vec![TemplatePlan::Splice(PathPlan::var(0))],
            },
        }
    }

    #[test]
    fn structure_queries() {
        let p = sample_plan();
        assert_eq!(p.scans_of_param(0), 1);
        assert_eq!(p.scans_of_param(1), 0);
        assert!(p.references_param(0));
        assert!(!p.references_param(1));
        assert_eq!(p.ops.chain_len(), 3);
    }

    #[test]
    fn references() {
        let p = sample_plan();
        if let Op::Filter { pred, .. } = &p.ops {
            assert!(pred.references_var(0));
            assert!(!pred.references_var(1));
            assert_eq!(pred.referenced_vars(), vec![0]);
            assert!(!pred.references_param(0));
        } else {
            panic!("expected filter on top");
        }
        assert_eq!(p.template.referenced_vars(), vec![0]);
    }

    #[test]
    fn display_explains() {
        let p = sample_plan();
        let s = p.to_string();
        assert!(s.contains("Construct"), "{s}");
        assert!(s.contains("Filter ?0/@name = \"vim\""), "{s}");
        assert!(s.contains("ForEach ?0 ← $0//pkg"), "{s}");
        assert!(s.contains("Unit"), "{s}");
    }

    #[test]
    fn plan_equality_is_structural() {
        assert_eq!(sample_plan(), sample_plan());
        let mut other = sample_plan();
        other.template = TemplatePlan::Text("x".into());
        assert_ne!(sample_plan(), other);
    }

    #[test]
    fn path_reference_helpers() {
        let p = PathPlan {
            start: StartRef::Var(2),
            steps: vec![PlanStep {
                axis: Axis::Child,
                test: PlanTest::Wildcard,
                preds: vec![PredPlan::Exists(PathPlan::param(3))],
            }],
        };
        assert!(p.references_var(2));
        assert!(!p.references_var(0));
        assert!(p.references_param(3));
        assert!(!p.references_param(0));
    }
}
