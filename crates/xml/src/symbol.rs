//! Interned label symbols — the paper's label alphabet `L` as `u32`s.
//!
//! Every element and attribute name in a distributed AXML system is drawn
//! from a small alphabet that repeats massively across documents (think
//! `<pkg>` in a 10⁵-entry catalog, replicated across mirrors). A
//! [`Symbol`] is a `u32` handle into a process-wide interner: equality and
//! hashing are O(1) on the id, copying is a register move, and the string
//! itself is stored exactly once.
//!
//! ## Interner design
//!
//! The interner is sharded 16 ways by a stable FNV-1a hash of the text.
//! Each shard publishes an immutable snapshot (`lookup` map + `resolve`
//! table) through an atomic pointer:
//!
//! * **Reads are lock-free.** [`Symbol::new`] on an already-interned
//!   string (the overwhelmingly common case) loads the shard snapshot
//!   with one `Acquire` load and probes an immutable `HashMap` — no
//!   mutex, no contention, no writer can block a reader.
//! * **Writes are rare and shard-local.** A miss takes the shard's write
//!   mutex, re-checks, then publishes a fresh snapshot containing the new
//!   entry. Concurrent misses on *different* shards do not contend.
//!
//! Interned strings live for the process lifetime (they are leaked into
//! `&'static str`), as do superseded shard snapshots. For label alphabets
//! — tens to a few thousand distinct strings — this retired-snapshot
//! memory is O(alphabet²/shards) words in the worst case and measured in
//! kilobytes in practice; the payoff is a read path with no
//! synchronization at all.
//!
//! ## Determinism
//!
//! Symbol **ids** depend on interning order and must never leak into
//! observable output. Everything observable is derived from the text:
//! [`Symbol::cmp`] is lexicographic on the string (so canonical child
//! ordering, serialization, and equivalence are byte-identical across
//! processes regardless of interning order) and [`Symbol`]'s `Hash` feeds
//! the *content* hash cached at intern time (so canonical hashes are
//! stable across processes too).

use std::collections::HashMap;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicPtr, Ordering};
use std::sync::Mutex;

/// An interned element/attribute label: a symbol of the alphabet `L`.
///
/// `Symbol` is `Copy` — pass it by value everywhere. Equality compares
/// two `u32`s; `Hash` writes a cached content hash (one table lookup).
/// The historical name [`Label`](crate::label::Label) remains as an
/// alias.
#[derive(Clone, Copy)]
pub struct Symbol(u32);

const SHARD_BITS: u32 = 4;
const SHARDS: usize = 1 << SHARD_BITS;
const SHARD_MASK: u32 = (SHARDS as u32) - 1;

/// Stable 64-bit FNV-1a over the label bytes — used both to pick the
/// shard and as the cached content hash. Must never change: canonical
/// hashes across peer processes depend on it.
fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One interned entry: the leaked text and its stable content hash.
struct Entry {
    text: &'static str,
    content_hash: u64,
}

/// An immutable, atomically published view of one shard.
struct Snapshot {
    /// text → global symbol id.
    lookup: HashMap<&'static str, u32>,
    /// shard-local index → entry (id >> SHARD_BITS indexes this).
    entries: Vec<Entry>,
}

struct Shard {
    /// Current snapshot; readers load it with `Acquire` and never lock.
    current: AtomicPtr<Snapshot>,
    /// Serializes writers within the shard.
    write: Mutex<()>,
}

fn shards() -> &'static [Shard; SHARDS] {
    static SHARDS_CELL: std::sync::OnceLock<[Shard; SHARDS]> = std::sync::OnceLock::new();
    SHARDS_CELL.get_or_init(|| {
        std::array::from_fn(|_| Shard {
            current: AtomicPtr::new(Box::into_raw(Box::new(Snapshot {
                lookup: HashMap::new(),
                entries: Vec::new(),
            }))),
            write: Mutex::new(()),
        })
    })
}

impl Symbol {
    /// Intern `s` and return its symbol.
    ///
    /// Lock-free on the hit path; a miss takes the owning shard's write
    /// lock once per *distinct* string per process lifetime.
    pub fn new(s: &str) -> Self {
        let h = fnv1a(s);
        let shard = &shards()[(h & SHARD_MASK as u64) as usize];
        // Fast path: immutable snapshot probe, no lock.
        let snap = unsafe { &*shard.current.load(Ordering::Acquire) };
        if let Some(&id) = snap.lookup.get(s) {
            return Symbol(id);
        }
        Self::intern_slow(s, h, shard)
    }

    #[cold]
    fn intern_slow(s: &str, h: u64, shard: &'static Shard) -> Self {
        let _guard = shard.write.lock().expect("symbol interner poisoned");
        // Re-check: another writer may have interned `s` while we waited.
        let snap = unsafe { &*shard.current.load(Ordering::Acquire) };
        if let Some(&id) = snap.lookup.get(s) {
            return Symbol(id);
        }
        let text: &'static str = Box::leak(Box::from(s));
        let local = snap.entries.len() as u32;
        let id = (local << SHARD_BITS) | ((h as u32) & SHARD_MASK);
        let mut lookup = snap.lookup.clone();
        lookup.insert(text, id);
        let mut entries: Vec<Entry> = snap
            .entries
            .iter()
            .map(|e| Entry {
                text: e.text,
                content_hash: e.content_hash,
            })
            .collect();
        entries.push(Entry {
            text,
            content_hash: h,
        });
        // Publish the new snapshot; the superseded one is intentionally
        // leaked (a lock-free reader may still be probing it).
        let next = Box::into_raw(Box::new(Snapshot { lookup, entries }));
        shard.current.store(next, Ordering::Release);
        Symbol(id)
    }

    fn entry(self) -> &'static Entry {
        let shard = &shards()[(self.0 & SHARD_MASK) as usize];
        let snap = unsafe { &*shard.current.load(Ordering::Acquire) };
        &snap.entries[(self.0 >> SHARD_BITS) as usize]
    }

    /// The interned text. `'static`: interned strings live for the
    /// process lifetime.
    pub fn as_str(self) -> &'static str {
        self.entry().text
    }

    /// The stable 64-bit content hash (FNV-1a of the text), cached at
    /// intern time. Identical across processes and interning orders.
    pub fn content_hash(self) -> u64 {
        self.entry().content_hash
    }

    /// Length of the label text in bytes (used for wire-size accounting).
    pub fn len(self) -> usize {
        self.as_str().len()
    }

    /// Whether the label is the empty string (never produced by the
    /// parser, but constructible through the API).
    pub fn is_empty(self) -> bool {
        self.as_str().is_empty()
    }
}

impl PartialEq for Symbol {
    fn eq(&self, other: &Self) -> bool {
        // Interning guarantees one id per string: O(1).
        self.0 == other.0
    }
}

impl Eq for Symbol {}

impl PartialOrd for Symbol {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Symbol {
    /// Lexicographic on the text — **not** on the id — so that canonical
    /// orderings are identical across processes with different interning
    /// orders.
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        if self.0 == other.0 {
            return std::cmp::Ordering::Equal;
        }
        self.as_str().cmp(other.as_str())
    }
}

impl Hash for Symbol {
    /// Writes the cached content hash: O(1) in the text length, and
    /// stable across processes (canonical hashes depend on it).
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u64(self.content_hash());
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Symbol({:?})", self.as_str())
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Self {
        Symbol::new(s)
    }
}

impl From<String> for Symbol {
    fn from(s: String) -> Self {
        Symbol::new(&s)
    }
}

impl From<&String> for Symbol {
    fn from(s: &String) -> Self {
        Symbol::new(s)
    }
}

impl AsRef<str> for Symbol {
    fn as_ref(&self) -> &str {
        self.as_str()
    }
}

/// Interner pressure counters: `(distinct symbols, interned text
/// bytes)` across all shards. Lock-free — reads each shard's published
/// snapshot, so the result is a consistent-enough lower bound while
/// writers are racing (memory-discipline accounting, not a barrier).
pub fn interner_stats() -> (u64, u64) {
    let (mut symbols, mut bytes) = (0u64, 0u64);
    for shard in shards() {
        let snap = unsafe { &*shard.current.load(Ordering::Acquire) };
        symbols += snap.entries.len() as u64;
        bytes += snap
            .entries
            .iter()
            .map(|e| e.text.len() as u64)
            .sum::<u64>();
    }
    (symbols, bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_dedups() {
        let a = Symbol::new("catalog");
        let b = Symbol::new("catalog");
        assert_eq!(a.0, b.0);
        assert_eq!(a, b);
        assert_eq!(a.as_str(), "catalog");
    }

    #[test]
    fn interner_stats_count_distinct_symbols() {
        let (s0, b0) = interner_stats();
        Symbol::new("interner-stats-probe-alpha");
        Symbol::new("interner-stats-probe-alpha"); // dup: no growth
        Symbol::new("interner-stats-probe-beta");
        let (s1, b1) = interner_stats();
        // Other tests intern concurrently, so assert growth bounds, not
        // exact values.
        assert!(s1 >= s0 + 2, "two new distinct symbols: {s0} -> {s1}");
        assert!(b1 >= b0 + 2 * "interner-stats-probe-alpha".len() as u64 - 1);
    }

    #[test]
    fn distinct_labels_differ() {
        assert_ne!(Symbol::new("a"), Symbol::new("b"));
    }

    #[test]
    fn ordering_is_lexicographic() {
        assert!(Symbol::new("aaa") < Symbol::new("aab"));
        assert!(Symbol::new("b") > Symbol::new("azzz"));
        assert_eq!(
            Symbol::new("same").cmp(&Symbol::new("same")),
            std::cmp::Ordering::Equal
        );
    }

    #[test]
    fn display_and_len() {
        let l = Symbol::new("pkg");
        assert_eq!(l.to_string(), "pkg");
        assert_eq!(l.len(), 3);
        assert!(!l.is_empty());
        assert!(Symbol::new("").is_empty());
    }

    #[test]
    fn hash_consistent_with_eq_and_content() {
        use std::collections::hash_map::DefaultHasher;
        let h = |l: &Symbol| {
            let mut s = DefaultHasher::new();
            l.hash(&mut s);
            s.finish()
        };
        assert_eq!(h(&Symbol::new("x")), h(&Symbol::new("x")));
        // content hash is the raw FNV — stable across processes.
        assert_eq!(Symbol::new("x").content_hash(), fnv1a("x"));
    }

    #[test]
    fn copy_semantics() {
        let a = Symbol::new("copy-me");
        let b = a; // Copy, not Clone
        assert_eq!(a, b);
    }

    #[test]
    fn many_symbols_across_shards_resolve() {
        let syms: Vec<Symbol> = (0..500).map(|i| Symbol::new(&format!("sym-{i}"))).collect();
        for (i, s) in syms.iter().enumerate() {
            assert_eq!(s.as_str(), format!("sym-{i}"));
        }
        // Re-interning yields identical ids.
        for (i, s) in syms.iter().enumerate() {
            assert_eq!(*s, Symbol::new(&format!("sym-{i}")));
        }
    }

    #[test]
    fn concurrent_interning_agrees() {
        let handles: Vec<_> = (0..8)
            .map(|t| {
                std::thread::spawn(move || {
                    (0..200)
                        .map(|i| Symbol::new(&format!("concurrent-{}", (i + t) % 100)))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let all: Vec<Vec<Symbol>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for row in &all {
            for s in row {
                assert!(s.as_str().starts_with("concurrent-"));
            }
        }
        // Same string ⇒ same id, across all threads.
        assert_eq!(Symbol::new("concurrent-0"), all[0][all[0].len() - 200..][0]);
    }
}
