//! Documents `d@p` and the per-peer document store.
//!
//! §2.1: *"An XML document is a tuple (t, d) where t is an XML tree and d a
//! document name. No two documents can agree on the values of (d, p)."* —
//! a [`DocStore`] enforces exactly that uniqueness for one peer.

use crate::error::{XmlError, XmlResult};
use crate::frag::Frag;
use crate::ids::DocName;
use crate::tree::{NodeId, Tree};
use std::collections::BTreeMap;

/// A named XML document (the tuple `(t, d)`), hosted by one peer.
#[derive(Debug, Clone)]
pub struct Document {
    name: DocName,
    tree: Tree,
}

impl Document {
    /// Create a document from a name and a tree.
    pub fn new(name: impl Into<DocName>, tree: Tree) -> Self {
        Document {
            name: name.into(),
            tree,
        }
    }

    /// The document name `d`.
    pub fn name(&self) -> &DocName {
        &self.name
    }

    /// The document's tree.
    pub fn tree(&self) -> &Tree {
        &self.tree
    }

    /// Mutable access to the tree (service responses accumulate here).
    pub fn tree_mut(&mut self) -> &mut Tree {
        &mut self.tree
    }

    /// Consume the document, yielding its tree.
    pub fn into_tree(self) -> Tree {
        self.tree
    }

    /// Share the whole document as an immutable [`Frag`] handle — O(1).
    /// This is how a document crosses engine layers without copying:
    /// the frag stays valid (snapshot semantics) even if the document
    /// is mutated afterwards.
    pub fn frag(&self) -> Frag {
        self.tree.share_root()
    }

    /// Share the subtree rooted at `node` as a [`Frag`] — O(1).
    pub fn frag_at(&self, node: NodeId) -> XmlResult<Frag> {
        self.tree.share(node)
    }
}

/// The set of documents hosted by one peer. Names are unique.
#[derive(Debug, Default, Clone)]
pub struct DocStore {
    docs: BTreeMap<DocName, Document>,
}

impl DocStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Install a new document. Fails if the name is taken — the paper's
    /// `send(d@p2, t)` requires *"d was not previously in use on p2"*.
    pub fn insert(&mut self, doc: Document) -> XmlResult<()> {
        if self.docs.contains_key(doc.name()) {
            return Err(XmlError::DuplicateDocument(doc.name().to_string()));
        }
        self.docs.insert(doc.name().clone(), doc);
        Ok(())
    }

    /// Install or replace a document (used by replication maintenance,
    /// which is outside the uniqueness rule).
    pub fn insert_or_replace(&mut self, doc: Document) {
        self.docs.insert(doc.name().clone(), doc);
    }

    /// Look up a document by name.
    pub fn get(&self, name: &DocName) -> Option<&Document> {
        self.docs.get(name)
    }

    /// Look up a document by name, mutably.
    pub fn get_mut(&mut self, name: &DocName) -> Option<&mut Document> {
        self.docs.get_mut(name)
    }

    /// Like [`DocStore::get`] but with a typed error.
    pub fn require(&self, name: &DocName) -> XmlResult<&Document> {
        self.get(name)
            .ok_or_else(|| XmlError::NoSuchDocument(name.to_string()))
    }

    /// Like [`DocStore::get_mut`] but with a typed error.
    pub fn require_mut(&mut self, name: &DocName) -> XmlResult<&mut Document> {
        self.docs
            .get_mut(name)
            .ok_or_else(|| XmlError::NoSuchDocument(name.to_string()))
    }

    /// Remove a document, returning it.
    pub fn remove(&mut self, name: &DocName) -> Option<Document> {
        self.docs.remove(name)
    }

    /// True if a document with this name exists.
    pub fn contains(&self, name: &DocName) -> bool {
        self.docs.contains_key(name)
    }

    /// Number of documents.
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    /// True when the store holds no documents.
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }

    /// Iterate documents in name order (deterministic).
    pub fn iter(&self) -> impl Iterator<Item = &Document> {
        self.docs.values()
    }

    /// Document names in order.
    pub fn names(&self) -> impl Iterator<Item = &DocName> {
        self.docs.keys()
    }

    /// Total wire size of all documents (storage accounting).
    pub fn total_size(&self) -> usize {
        self.docs.values().map(|d| d.tree().serialized_size()).sum()
    }

    /// Resolve a node inside a document: convenience for forward lists.
    pub fn node(&self, name: &DocName, node: NodeId) -> XmlResult<&Tree> {
        let doc = self.require(name)?;
        if !doc.tree().contains(node) {
            return Err(XmlError::InvalidNode {
                index: node.index() as u32,
            });
        }
        Ok(doc.tree())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(name: &str, xml: &str) -> Document {
        Document::new(name, Tree::parse(xml).unwrap())
    }

    #[test]
    fn uniqueness_enforced() {
        let mut s = DocStore::new();
        s.insert(doc("d1", "<a/>")).unwrap();
        let e = s.insert(doc("d1", "<b/>")).unwrap_err();
        assert!(matches!(e, XmlError::DuplicateDocument(_)));
        assert_eq!(s.len(), 1);
        assert_eq!(s.get(&"d1".into()).unwrap().tree().serialize(), "<a/>");
    }

    #[test]
    fn replace_overrides() {
        let mut s = DocStore::new();
        s.insert(doc("d1", "<a/>")).unwrap();
        s.insert_or_replace(doc("d1", "<b/>"));
        assert_eq!(s.get(&"d1".into()).unwrap().tree().serialize(), "<b/>");
    }

    #[test]
    fn require_errors() {
        let mut s = DocStore::new();
        assert!(matches!(
            s.require(&"nope".into()),
            Err(XmlError::NoSuchDocument(_))
        ));
        assert!(s.require_mut(&"nope".into()).is_err());
        s.insert(doc("d", "<a/>")).unwrap();
        assert!(s.require(&"d".into()).is_ok());
    }

    #[test]
    fn iteration_is_name_ordered() {
        let mut s = DocStore::new();
        s.insert(doc("zz", "<a/>")).unwrap();
        s.insert(doc("aa", "<a/>")).unwrap();
        let names: Vec<_> = s.names().map(|n| n.to_string()).collect();
        assert_eq!(names, ["aa", "zz"]);
    }

    #[test]
    fn sizes_and_removal() {
        let mut s = DocStore::new();
        s.insert(doc("d", "<a><b>xy</b></a>")).unwrap();
        assert_eq!(s.total_size(), "<a><b>xy</b></a>".len());
        assert!(!s.is_empty());
        let d = s.remove(&"d".into()).unwrap();
        assert_eq!(d.into_tree().serialize(), "<a><b>xy</b></a>");
        assert!(s.is_empty());
        assert_eq!(s.total_size(), 0);
    }

    #[test]
    fn node_lookup_validates() {
        let mut s = DocStore::new();
        s.insert(doc("d", "<a><b/></a>")).unwrap();
        use crate::tree::NodeId;
        assert!(s.node(&"d".into(), NodeId::from_index(0).unwrap()).is_ok());
        assert!(s
            .node(&"d".into(), NodeId::from_index(99).unwrap())
            .is_err());
        assert!(s.node(&"x".into(), NodeId::from_index(0).unwrap()).is_err());
    }

    #[test]
    fn document_mutation() {
        let mut d = doc("d", "<a/>");
        let r = d.tree().root();
        d.tree_mut().add_text_element(r, "b", "1");
        assert_eq!(d.tree().serialize(), "<a><b>1</b></a>");
        assert_eq!(d.name().as_str(), "d");
    }

    #[test]
    fn document_frag_is_a_snapshot() {
        let mut d = doc("d", "<a><b/></a>");
        let f = d.frag();
        let b = d.tree().first_child_labeled(d.tree().root(), "b").unwrap();
        let fb = d.frag_at(b).unwrap();
        // mutate the document: the frags keep the old snapshot
        let r = d.tree().root();
        d.tree_mut().add_text_element(r, "c", "2");
        assert_eq!(f.serialize(), "<a><b/></a>");
        assert_eq!(fb.serialize(), "<b/>");
        assert!(d.tree().serialize().contains("<c>2</c>"));
    }
}
