//! Escaping and unescaping of XML character data and attribute values.

/// Escape text content: `&`, `<`, `>` are replaced by entities.
pub fn escape_text(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            _ => out.push(c),
        }
    }
    out
}

/// Escape an attribute value (double-quoted): also escapes `"`.
pub fn escape_attr(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            _ => out.push(c),
        }
    }
    out
}

/// Number of bytes `escape_text(s)` would produce, without allocating.
pub fn escaped_text_len(s: &str) -> usize {
    s.chars()
        .map(|c| match c {
            '&' => 5,
            '<' | '>' => 4,
            _ => c.len_utf8(),
        })
        .sum()
}

/// Resolve one entity (the text between `&` and `;`). Supports the five
/// predefined entities and decimal/hex character references.
pub fn resolve_entity(name: &str) -> Option<char> {
    match name {
        "amp" => Some('&'),
        "lt" => Some('<'),
        "gt" => Some('>'),
        "quot" => Some('"'),
        "apos" => Some('\''),
        _ => {
            let code =
                if let Some(hex) = name.strip_prefix("#x").or_else(|| name.strip_prefix("#X")) {
                    u32::from_str_radix(hex, 16).ok()?
                } else if let Some(dec) = name.strip_prefix('#') {
                    dec.parse::<u32>().ok()?
                } else {
                    return None;
                };
            char::from_u32(code)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_text() {
        assert_eq!(escape_text("a<b&c>d"), "a&lt;b&amp;c&gt;d");
        assert_eq!(escape_text("plain"), "plain");
        assert_eq!(escape_text(r#"quote " stays"#), r#"quote " stays"#);
    }

    #[test]
    fn escapes_attr() {
        assert_eq!(escape_attr(r#"a"b<c"#), "a&quot;b&lt;c");
    }

    #[test]
    fn escaped_len_matches() {
        for s in ["", "plain", "a<b&c>d", "ünïcode <&>", "\"q\""] {
            assert_eq!(escaped_text_len(s), escape_text(s).len(), "{s:?}");
        }
    }

    #[test]
    fn entities_resolve() {
        assert_eq!(resolve_entity("amp"), Some('&'));
        assert_eq!(resolve_entity("lt"), Some('<'));
        assert_eq!(resolve_entity("gt"), Some('>'));
        assert_eq!(resolve_entity("quot"), Some('"'));
        assert_eq!(resolve_entity("apos"), Some('\''));
        assert_eq!(resolve_entity("#65"), Some('A'));
        assert_eq!(resolve_entity("#x41"), Some('A'));
        assert_eq!(resolve_entity("#x1F600"), Some('😀'));
        assert_eq!(resolve_entity("bogus"), None);
        assert_eq!(resolve_entity("#xZZ"), None);
        assert_eq!(resolve_entity("#xD800"), None, "surrogates are invalid");
    }
}
