//! A hand-written parser for the XML 1.0 subset used by AXML.
//!
//! Supported: one root element, nested elements, attributes (single or
//! double quoted), character data with the five predefined entities and
//! numeric character references, CDATA sections, comments, processing
//! instructions and an optional XML declaration (both skipped).
//!
//! Not supported (not needed by the paper's model): DTDs, namespaces as
//! first-class objects (colons are simply part of names), and mixed-content
//! whitespace preservation — **whitespace-only text between elements is
//! dropped**, so `parse(pretty(t))` re-reads the same tree.

use crate::error::{XmlError, XmlResult};
use crate::escape::resolve_entity;
use crate::tree::{NodeId, Tree};

impl Tree {
    /// Parse an XML string into a tree.
    ///
    /// ```
    /// use axml_xml::tree::Tree;
    /// let t = Tree::parse("<a x='1'><b>hi</b></a>").unwrap();
    /// assert_eq!(t.attr(t.root(), "x"), Some("1"));
    /// ```
    pub fn parse(input: &str) -> XmlResult<Tree> {
        Parser::new(input).parse_document()
    }
}

struct Parser<'a> {
    input: &'a str,
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Self {
        Parser {
            input,
            bytes: input.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn err(&self, msg: impl Into<String>) -> XmlError {
        XmlError::parse(msg, self.line, self.col)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn starts_with(&self, s: &str) -> bool {
        self.input[self.pos..].starts_with(s)
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }

    fn bump_n(&mut self, n: usize) {
        for _ in 0..n {
            self.bump();
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.bump();
        }
    }

    fn expect(&mut self, b: u8) -> XmlResult<()> {
        match self.peek() {
            Some(x) if x == b => {
                self.bump();
                Ok(())
            }
            Some(x) => Err(self.err(format!("expected `{}`, found `{}`", b as char, x as char))),
            None => Err(self.err(format!("expected `{}`, found end of input", b as char))),
        }
    }

    fn parse_document(&mut self) -> XmlResult<Tree> {
        self.skip_misc()?;
        if self.peek() != Some(b'<') {
            return Err(self.err("expected root element"));
        }
        let mut tree: Option<Tree> = None;
        self.parse_element(&mut tree, None)?;
        self.skip_misc()?;
        if self.pos != self.bytes.len() {
            return Err(self.err("unexpected content after root element"));
        }
        Ok(tree.expect("parse_element populates the tree"))
    }

    /// Skip whitespace, comments, PIs and the XML declaration.
    fn skip_misc(&mut self) -> XmlResult<()> {
        loop {
            self.skip_ws();
            if self.starts_with("<?") {
                self.skip_until("?>")?;
            } else if self.starts_with("<!--") {
                self.skip_until("-->")?;
            } else if self.starts_with("<!DOCTYPE") {
                return Err(self.err("DOCTYPE declarations are not supported"));
            } else {
                return Ok(());
            }
        }
    }

    fn skip_until(&mut self, end: &str) -> XmlResult<()> {
        match self.input[self.pos..].find(end) {
            Some(off) => {
                self.bump_n(off + end.len());
                Ok(())
            }
            None => Err(self.err(format!("unterminated construct, expected `{end}`"))),
        }
    }

    fn parse_name(&mut self) -> XmlResult<&'a str> {
        let start = self.pos;
        match self.peek() {
            Some(b) if is_name_start(b) => {
                self.bump();
            }
            _ => return Err(self.err("expected a name")),
        }
        while let Some(b) = self.peek() {
            if is_name_char(b) {
                self.bump();
            } else {
                break;
            }
        }
        Ok(&self.input[start..self.pos])
    }

    /// Parse `<name attrs> children </name>` or `<name attrs/>`.
    ///
    /// On the first (root) call `tree` is `None` and is created from the
    /// root element's name; afterwards children attach under `parent`.
    fn parse_element(&mut self, tree: &mut Option<Tree>, parent: Option<NodeId>) -> XmlResult<()> {
        self.expect(b'<')?;
        let name = self.parse_name()?.to_owned();
        let el = match (tree.as_mut(), parent) {
            (None, _) => {
                *tree = Some(Tree::new(name.as_str()));
                tree.as_ref().expect("just set").root()
            }
            (Some(t), Some(p)) => t.add_element(p, name.as_str()),
            (Some(_), None) => unreachable!("non-root parse always has a parent"),
        };
        // attributes
        loop {
            let before = self.pos;
            self.skip_ws();
            match self.peek() {
                Some(b'/') | Some(b'>') => break,
                Some(b) if is_name_start(b) => {
                    if before == self.pos {
                        return Err(self.err("expected whitespace before attribute"));
                    }
                    let aname = self.parse_name()?.to_owned();
                    self.skip_ws();
                    self.expect(b'=')?;
                    self.skip_ws();
                    let value = self.parse_attr_value()?;
                    let t = tree.as_mut().expect("tree exists");
                    if t.attr(el, &aname).is_some() {
                        return Err(self.err(format!("duplicate attribute `{aname}`")));
                    }
                    t.set_attr(el, aname.as_str(), value)
                        .expect("el is an element");
                }
                Some(c) => return Err(self.err(format!("unexpected `{}` in tag", c as char))),
                None => return Err(self.err("unexpected end of input in tag")),
            }
        }
        if self.peek() == Some(b'/') {
            self.bump();
            self.expect(b'>')?;
            return Ok(());
        }
        self.expect(b'>')?;
        // content
        loop {
            if self.starts_with("</") {
                self.bump_n(2);
                let close = self.parse_name()?;
                if close != name {
                    return Err(self.err(format!(
                        "mismatched closing tag: expected `</{name}>`, found `</{close}>`"
                    )));
                }
                self.skip_ws();
                self.expect(b'>')?;
                return Ok(());
            } else if self.starts_with("<!--") {
                self.skip_until("-->")?;
            } else if self.starts_with("<![CDATA[") {
                let text = self.parse_cdata()?;
                let t = tree.as_mut().expect("tree exists");
                t.add_text(el, text);
            } else if self.starts_with("<?") {
                self.skip_until("?>")?;
            } else if self.peek() == Some(b'<') {
                self.parse_element(tree, Some(el))?;
            } else if self.peek().is_none() {
                return Err(self.err(format!("unexpected end of input inside `<{name}>`")));
            } else {
                let text = self.parse_text()?;
                if !text.trim().is_empty() {
                    let t = tree.as_mut().expect("tree exists");
                    t.add_text(el, text);
                }
            }
        }
    }

    fn parse_attr_value(&mut self) -> XmlResult<String> {
        let quote = match self.peek() {
            Some(q @ (b'"' | b'\'')) => {
                self.bump();
                q
            }
            _ => return Err(self.err("expected quoted attribute value")),
        };
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(q) if q == quote => {
                    self.bump();
                    return Ok(out);
                }
                Some(b'&') => out.push(self.parse_entity()?),
                Some(b'<') => return Err(self.err("`<` is not allowed in attribute values")),
                Some(_) => {
                    let start = self.pos;
                    while let Some(b) = self.peek() {
                        if b == quote || b == b'&' || b == b'<' {
                            break;
                        }
                        self.bump();
                    }
                    out.push_str(&self.input[start..self.pos]);
                }
                None => return Err(self.err("unterminated attribute value")),
            }
        }
    }

    fn parse_text(&mut self) -> XmlResult<String> {
        let mut out = String::new();
        loop {
            match self.peek() {
                None | Some(b'<') => return Ok(out),
                Some(b'&') => out.push(self.parse_entity()?),
                Some(_) => {
                    let start = self.pos;
                    while let Some(b) = self.peek() {
                        if b == b'<' || b == b'&' {
                            break;
                        }
                        self.bump();
                    }
                    out.push_str(&self.input[start..self.pos]);
                }
            }
        }
    }

    fn parse_entity(&mut self) -> XmlResult<char> {
        self.expect(b'&')?;
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b == b';' {
                let name = &self.input[start..self.pos];
                let c = resolve_entity(name)
                    .ok_or_else(|| self.err(format!("unknown entity `&{name};`")))?;
                self.bump();
                return Ok(c);
            }
            if self.pos - start > 10 {
                break;
            }
            self.bump();
        }
        Err(self.err("unterminated entity reference"))
    }

    fn parse_cdata(&mut self) -> XmlResult<String> {
        debug_assert!(self.starts_with("<![CDATA["));
        self.bump_n("<![CDATA[".len());
        match self.input[self.pos..].find("]]>") {
            Some(off) => {
                let text = self.input[self.pos..self.pos + off].to_owned();
                self.bump_n(off + 3);
                Ok(text)
            }
            None => Err(self.err("unterminated CDATA section")),
        }
    }
}

fn is_name_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b == b':' || b >= 0x80
}

fn is_name_char(b: u8) -> bool {
    is_name_start(b) || b.is_ascii_digit() || b == b'-' || b == b'.'
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_roundtrip() {
        let src = r#"<a k="v"><b>hi</b><c/></a>"#;
        let t = Tree::parse(src).unwrap();
        assert_eq!(t.serialize(), src);
    }

    #[test]
    fn whitespace_between_elements_dropped() {
        let t = Tree::parse("<a>\n  <b>x</b>\n  <c/>\n</a>").unwrap();
        assert_eq!(t.serialize(), "<a><b>x</b><c/></a>");
    }

    #[test]
    fn declaration_comments_pis_skipped() {
        let t = Tree::parse(
            "<?xml version=\"1.0\"?>\n<!-- hi --><a><!-- in --><?pi data?><b/></a><!-- post -->",
        )
        .unwrap();
        assert_eq!(t.serialize(), "<a><b/></a>");
    }

    #[test]
    fn entities_and_charrefs() {
        let t = Tree::parse("<a attr='1 &amp; 2'>&lt;x&gt; &#65;&#x42;</a>").unwrap();
        assert_eq!(t.attr(t.root(), "attr"), Some("1 & 2"));
        assert_eq!(t.text(t.root()), "<x> AB");
    }

    #[test]
    fn cdata_preserved_verbatim() {
        let t = Tree::parse("<a><![CDATA[<not a tag> & co]]></a>").unwrap();
        assert_eq!(t.text(t.root()), "<not a tag> & co");
    }

    #[test]
    fn single_quoted_attrs() {
        let t = Tree::parse(r#"<a x='y"z'/>"#).unwrap();
        assert_eq!(t.attr(t.root(), "x"), Some("y\"z"));
    }

    #[test]
    fn errors_are_positioned() {
        let e = Tree::parse("<a>\n<b></c></a>").unwrap_err();
        match e {
            XmlError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn rejects_malformed() {
        assert!(Tree::parse("").is_err());
        assert!(Tree::parse("just text").is_err());
        assert!(Tree::parse("<a>").is_err());
        assert!(Tree::parse("<a></b>").is_err());
        assert!(Tree::parse("<a><a/>").is_err());
        assert!(Tree::parse("<a/><b/>").is_err());
        assert!(Tree::parse("<a x=1/>").is_err());
        assert!(Tree::parse("<a x=\"1\" x=\"2\"/>").is_err());
        assert!(Tree::parse("<a>&bogus;</a>").is_err());
        assert!(Tree::parse("<a>&unterminated</a>").is_err());
        assert!(Tree::parse("<a b=\"<\"/>").is_err());
        assert!(Tree::parse("<!DOCTYPE html><a/>").is_err());
        assert!(Tree::parse("<a><![CDATA[x]]</a>").is_err());
        assert!(Tree::parse("<1tag/>").is_err());
        assert!(Tree::parse("<a trailing=\"1\"").is_err());
    }

    #[test]
    fn missing_space_between_attrs_rejected() {
        assert!(Tree::parse(r#"<a x="1"y="2"/>"#).is_err());
    }

    #[test]
    fn nested_structure() {
        let t = Tree::parse("<r><l1><l2><l3>deep</l3></l2></l1><l1b/></r>").unwrap();
        assert_eq!(t.subtree_size(t.root()), 6);
        assert_eq!(t.depth(t.root()), 5);
        assert_eq!(t.text(t.root()), "deep");
    }

    #[test]
    fn colons_in_names_ok() {
        let t = Tree::parse("<axml:sc xmlns:axml=\"uri\"/>").unwrap();
        assert_eq!(t.label(t.root()).unwrap().as_str(), "axml:sc");
    }
}
