//! The identifier alphabets of the paper — peers `P`, documents `D`,
//! services `S`, queries, and cross-peer node addresses `n@p`.
//!
//! Section 2 of the paper fixes four disjoint sets of names: document names
//! `D`, service names `S`, peer identifiers `P` and node identifiers `N`.
//! This module provides newtypes for each so that the rest of the system
//! cannot confuse, say, a peer with a service (the classic stringly-typed
//! bug). All are cheap to clone.

use std::fmt;
use std::sync::Arc;

/// A peer identifier `p ∈ P`.
///
/// Peers are dense small integers, assigned by the network substrate at
/// registration time; the human-readable name lives in the peer table of
/// `axml-net`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PeerId(pub u32);

impl PeerId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Fallible conversion from a table index: peer ids are `u32`, so a
    /// table beyond 2³² peers cannot be addressed. Mirrors
    /// [`crate::tree::NodeId::from_index`] — a typed error instead of a
    /// silent `as` truncation that would alias two peers.
    pub fn from_index(i: usize) -> crate::error::XmlResult<Self> {
        match u32::try_from(i) {
            Ok(v) => Ok(PeerId(v)),
            Err(_) => Err(crate::error::XmlError::IndexOverflow { index: i as u64 }),
        }
    }
}

impl fmt::Display for PeerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

macro_rules! name_newtype {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(Arc<str>);

        impl $name {
            /// Wrap a name.
            pub fn new(s: impl AsRef<str>) -> Self {
                Self(Arc::from(s.as_ref()))
            }

            /// View as a string slice.
            pub fn as_str(&self) -> &str {
                &self.0
            }

            /// Byte length of the name (wire-size accounting).
            pub fn len(&self) -> usize {
                self.0.len()
            }

            /// True when the name is empty.
            pub fn is_empty(&self) -> bool {
                self.0.is_empty()
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str(&self.0)
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "({:?})"), &*self.0)
            }
        }

        impl From<&str> for $name {
            fn from(s: &str) -> Self {
                Self::new(s)
            }
        }

        impl From<String> for $name {
            fn from(s: String) -> Self {
                Self(Arc::from(s))
            }
        }

        impl AsRef<str> for $name {
            fn as_ref(&self) -> &str {
                self.as_str()
            }
        }
    };
}

name_newtype!(
    /// A document name `d ∈ D`. Documents are addressed as `d@p`
    /// (a concrete document on a peer) or `d@any` (a generic document, i.e.
    /// an equivalence class of replicas — Section 2.3).
    DocName,
    "DocName"
);

name_newtype!(
    /// A service name `s ∈ S`. Services are addressed as `s@p` or `s@any`.
    ServiceName,
    "ServiceName"
);

name_newtype!(
    /// The name of a declarative query registered on a peer. The paper's
    /// declarative services are implemented by such named queries, whose
    /// statements are visible to other peers (Section 2.2).
    QueryName,
    "QueryName"
);

/// A cross-peer node address `n@p` (Section 2.3, `forw` elements).
///
/// Node identifiers are only meaningful relative to the document that owns
/// them, so a full address names the peer, the document, and the node.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct NodeAddr {
    /// The peer on which the node lives.
    pub peer: PeerId,
    /// The document (on that peer) containing the node.
    pub doc: DocName,
    /// The node inside the document's tree.
    pub node: crate::tree::NodeId,
}

impl NodeAddr {
    /// Build an address.
    pub fn new(peer: PeerId, doc: impl Into<DocName>, node: crate::tree::NodeId) -> Self {
        NodeAddr {
            peer,
            doc: doc.into(),
            node,
        }
    }
}

impl fmt::Display for NodeAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}@{}", self.doc, self.node.index(), self.peer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::NodeId;

    #[test]
    fn peer_display() {
        assert_eq!(PeerId(3).to_string(), "p3");
        assert_eq!(PeerId(3).index(), 3);
    }

    #[test]
    fn peer_from_index_is_fallible() {
        assert_eq!(PeerId::from_index(42).unwrap(), PeerId(42));
        assert_eq!(PeerId::from_index(u32::MAX as usize).unwrap().0, u32::MAX);
        let too_big = u32::MAX as usize + 1;
        assert!(matches!(
            PeerId::from_index(too_big),
            Err(crate::error::XmlError::IndexOverflow { index }) if index == too_big as u64
        ));
    }

    #[test]
    fn names_roundtrip() {
        let d = DocName::new("catalog");
        assert_eq!(d.as_str(), "catalog");
        assert_eq!(d.to_string(), "catalog");
        assert_eq!(d, DocName::from("catalog"));
        assert_ne!(d, DocName::new("other"));
        assert_eq!(d.len(), 7);
        assert!(!d.is_empty());
    }

    #[test]
    fn distinct_name_types_coexist() {
        // Same text, different types — the compiler keeps them apart; this
        // test just pins the constructors.
        let _d: DocName = "x".into();
        let _s: ServiceName = "x".into();
        let _q: QueryName = String::from("x").into();
    }

    #[test]
    fn node_addr_display() {
        let a = NodeAddr::new(PeerId(1), "doc", NodeId::from_index(4).unwrap());
        assert_eq!(a.to_string(), "doc#4@p1");
    }
}
