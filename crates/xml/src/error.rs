//! Error types for XML parsing and tree manipulation.

use std::fmt;

/// Result alias used across the crate.
pub type XmlResult<T> = Result<T, XmlError>;

/// Errors raised while parsing or manipulating XML trees.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XmlError {
    /// Lexical or grammatical error in the input text, with 1-based
    /// line/column of the offending position.
    Parse {
        /// Human-readable description of what went wrong.
        msg: String,
        /// 1-based line of the error.
        line: u32,
        /// 1-based column of the error.
        col: u32,
    },
    /// A [`crate::tree::NodeId`] did not belong to the tree it was used with.
    InvalidNode {
        /// The raw index that was out of range or detached.
        index: u32,
    },
    /// An operation that requires an element node was given a text node.
    NotAnElement {
        /// The raw index of the offending node.
        index: u32,
    },
    /// Structural misuse, e.g. attaching a node to itself or re-attaching a
    /// node that already has a parent.
    Structure(String),
    /// A document name was already in use in a [`crate::store::DocStore`].
    DuplicateDocument(String),
    /// A document name was not found in a [`crate::store::DocStore`].
    NoSuchDocument(String),
    /// A raw node index (typically decoded from a network frame) exceeded
    /// the `u32` arena space of [`crate::tree::NodeId`].
    IndexOverflow {
        /// The raw index that did not fit.
        index: u64,
    },
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XmlError::Parse { msg, line, col } => {
                write!(f, "XML parse error at {line}:{col}: {msg}")
            }
            XmlError::InvalidNode { index } => write!(f, "invalid node id {index}"),
            XmlError::NotAnElement { index } => {
                write!(f, "node {index} is not an element")
            }
            XmlError::Structure(msg) => write!(f, "tree structure error: {msg}"),
            XmlError::DuplicateDocument(d) => write!(f, "document `{d}` already exists"),
            XmlError::NoSuchDocument(d) => write!(f, "document `{d}` not found"),
            XmlError::IndexOverflow { index } => {
                write!(f, "node index {index} exceeds the u32 arena space")
            }
        }
    }
}

impl std::error::Error for XmlError {}

impl XmlError {
    /// Construct a parse error at the given 1-based position.
    pub fn parse(msg: impl Into<String>, line: u32, col: u32) -> Self {
        XmlError::Parse {
            msg: msg.into(),
            line,
            col,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_contains_position() {
        let e = XmlError::parse("unexpected `<`", 3, 14);
        let s = e.to_string();
        assert!(s.contains("3:14"), "{s}");
        assert!(s.contains("unexpected"), "{s}");
    }

    #[test]
    fn display_other_variants() {
        assert_eq!(
            XmlError::InvalidNode { index: 7 }.to_string(),
            "invalid node id 7"
        );
        assert!(XmlError::DuplicateDocument("d".into())
            .to_string()
            .contains("already exists"));
        assert!(XmlError::NoSuchDocument("d".into())
            .to_string()
            .contains("not found"));
        assert!(XmlError::NotAnElement { index: 1 }
            .to_string()
            .contains("not an element"));
        assert!(XmlError::Structure("cycle".into())
            .to_string()
            .contains("cycle"));
        assert!(XmlError::IndexOverflow {
            index: u64::from(u32::MAX) + 1
        }
        .to_string()
        .contains("exceeds"));
    }
}
