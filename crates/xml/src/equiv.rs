//! Unordered deep-equivalence of trees and canonical hashing.
//!
//! The AXML model treats trees as **unordered** (§2.1), and the paper's
//! generic documents (§2.3) are *equivalence classes* of documents. The
//! full AXML equivalence of [Abiteboul, Milo, Benjelloun — PODS'04] is
//! behavioural (equal fix-points under call activation); its structural
//! base case — used here and extended behaviourally in `axml-core` — is
//! equality of trees up to sibling reordering.
//!
//! We decide it by computing a **canonical form**: attributes sorted by
//! name, children recursively canonicalized and sorted under a total
//! order. Two trees are equivalent iff their canonical forms are equal;
//! the canonical hash is the hash of that form.

use crate::label::Label;
use crate::tree::{NodeId, NodeKind, Tree};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// The canonical (order-normalized) form of a subtree.
///
/// `Canon` has a derived total order, which is what makes child sorting —
/// and therefore equivalence — well-defined.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Canon {
    /// A text leaf.
    Text(String),
    /// An element with sorted attributes and sorted canonical children.
    Elem {
        /// Element label.
        label: Label,
        /// Attributes sorted by name.
        attrs: Vec<(Label, String)>,
        /// Children in canonical order.
        children: Vec<Canon>,
    },
}

/// Compute the canonical form of the subtree of `tree` rooted at `node`.
pub fn canonicalize(tree: &Tree, node: NodeId) -> Canon {
    match &tree.node(node).kind() {
        NodeKind::Text(t) => Canon::Text(t.clone()),
        NodeKind::Element { label, attrs } => {
            let mut attrs = attrs.clone();
            attrs.sort();
            let mut children: Vec<Canon> = tree
                .children(node)
                .iter()
                .map(|&c| canonicalize(tree, c))
                .collect();
            children.sort();
            Canon::Elem {
                label: *label,
                attrs,
                children,
            }
        }
    }
}

/// Unordered deep-equivalence of two subtrees (possibly from different
/// trees): equal labels, equal attribute sets, and equal *multisets* of
/// equivalent children.
pub fn tree_equiv(a: &Tree, na: NodeId, b: &Tree, nb: NodeId) -> bool {
    canonicalize(a, na) == canonicalize(b, nb)
}

/// Equivalence of whole trees.
pub fn whole_tree_equiv(a: &Tree, b: &Tree) -> bool {
    tree_equiv(a, a.root(), b, b.root())
}

/// Equivalence of two *forests* (multisets of trees) — used for comparing
/// query results and stream contents, where arrival order is non-semantic.
pub fn forest_equiv(a: &[Tree], b: &[Tree]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut ca: Vec<Canon> = a.iter().map(|t| canonicalize(t, t.root())).collect();
    let mut cb: Vec<Canon> = b.iter().map(|t| canonicalize(t, t.root())).collect();
    ca.sort();
    cb.sort();
    ca == cb
}

/// A 64-bit canonical hash: equivalent trees always hash equal.
pub fn canonical_hash(tree: &Tree, node: NodeId) -> u64 {
    let mut h = DefaultHasher::new();
    canonicalize(tree, node).hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sibling_order_irrelevant() {
        let a = Tree::parse("<r><x/><y/><z>1</z></r>").unwrap();
        let b = Tree::parse("<r><z>1</z><x/><y/></r>").unwrap();
        assert!(whole_tree_equiv(&a, &b));
        assert_eq!(canonical_hash(&a, a.root()), canonical_hash(&b, b.root()));
    }

    #[test]
    fn attribute_order_irrelevant() {
        let a = Tree::parse(r#"<r a="1" b="2"/>"#).unwrap();
        let b = Tree::parse(r#"<r b="2" a="1"/>"#).unwrap();
        assert!(whole_tree_equiv(&a, &b));
    }

    #[test]
    fn multiset_semantics() {
        // <r><x/><x/></r> has TWO x children; not equivalent to one.
        let two = Tree::parse("<r><x/><x/></r>").unwrap();
        let one = Tree::parse("<r><x/></r>").unwrap();
        assert!(!whole_tree_equiv(&two, &one));
    }

    #[test]
    fn differing_text_differs() {
        let a = Tree::parse("<r><v>1</v></r>").unwrap();
        let b = Tree::parse("<r><v>2</v></r>").unwrap();
        assert!(!whole_tree_equiv(&a, &b));
    }

    #[test]
    fn differing_attr_value_differs() {
        let a = Tree::parse(r#"<r k="1"/>"#).unwrap();
        let b = Tree::parse(r#"<r k="2"/>"#).unwrap();
        assert!(!whole_tree_equiv(&a, &b));
    }

    #[test]
    fn nested_reordering() {
        let a = Tree::parse("<r><g><a/><b/></g><g><c/><d/></g></r>").unwrap();
        let b = Tree::parse("<r><g><d/><c/></g><g><b/><a/></g></r>").unwrap();
        assert!(whole_tree_equiv(&a, &b));
    }

    #[test]
    fn subtree_equiv_across_trees() {
        let a = Tree::parse("<r><pkg><v>1</v><n>vim</n></pkg></r>").unwrap();
        let b = Tree::parse("<other><pkg><n>vim</n><v>1</v></pkg></other>").unwrap();
        let pa = a.first_child_labeled(a.root(), "pkg").unwrap();
        let pb = b.first_child_labeled(b.root(), "pkg").unwrap();
        assert!(tree_equiv(&a, pa, &b, pb));
        assert!(!tree_equiv(&a, a.root(), &b, b.root()));
    }

    #[test]
    fn forest_equiv_is_multiset() {
        let t1 = Tree::parse("<a/>").unwrap();
        let t2 = Tree::parse("<b/>").unwrap();
        assert!(forest_equiv(
            &[t1.clone(), t2.clone()],
            &[t2.clone(), t1.clone()]
        ));
        assert!(!forest_equiv(&[t1.clone(), t1.clone()], &[t1.clone(), t2]));
        assert!(!forest_equiv(std::slice::from_ref(&t1), &[]));
        assert!(forest_equiv(&[], &[]));
    }
}
