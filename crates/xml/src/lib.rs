#![deny(missing_docs)]

//! # axml-xml — the XML data model for distributed AXML
//!
//! This crate implements the data model of Section 2.1 of
//! *"A Framework for Distributed XML Data Management"* (Abiteboul,
//! Manolescu, Taropa — EDBT 2006):
//!
//! * **unranked, unordered XML trees** whose internal nodes carry a label
//!   from the label set `L` and an identifier from the node-id set `N`
//!   ([`tree::Tree`], [`tree::NodeId`]),
//! * **documents** `d@p`: a tree residing on exactly one peer, under a
//!   document name from `D` ([`store::Document`], [`store::DocStore`]),
//! * the identifier alphabets of the paper — peers `P`, documents `D`,
//!   services `S`, nodes `N` ([`ids`]),
//! * a hand-written XML **parser** ([`parse`]) and **serializer**
//!   ([`serialize`]) so that trees, expressions and messages can cross the
//!   (simulated) wire as text, and
//! * the **unordered deep-equivalence** and canonical hashing used as the
//!   structural basis for the paper's document-equivalence classes
//!   ([`equiv`]),
//! * the **zero-copy substrate**: labels are interned [`symbol::Symbol`]s
//!   (`u32` handles, O(1) equality/hash, `Copy`), trees are copy-on-write
//!   handles over a shared arena, and subtrees move between layers as
//!   immutable [`frag::Frag`] handles — with every copy and avoided copy
//!   accounted in [`stats`].
//!
//! Everything above sits below the type system (`axml-types`), the query
//! language (`axml-query`), the network substrate (`axml-net`) and the
//! AXML algebra itself (`axml-core`).
//!
//! ## Quick example
//!
//! ```
//! use axml_xml::tree::Tree;
//! use axml_xml::equiv::tree_equiv;
//!
//! let a = Tree::parse(r#"<catalog><pkg name="vim"/><pkg name="gcc"/></catalog>"#).unwrap();
//! let b = Tree::parse(r#"<catalog><pkg name="gcc"/><pkg name="vim"/></catalog>"#).unwrap();
//! // Trees are unordered in the AXML model: sibling order is irrelevant.
//! assert!(tree_equiv(&a, a.root(), &b, b.root()));
//! assert_eq!(a.serialize_node(a.root()),
//!            r#"<catalog><pkg name="vim"/><pkg name="gcc"/></catalog>"#);
//! ```

pub mod equiv;
pub mod error;
pub mod escape;
pub mod frag;
pub mod ids;
pub mod label;
pub mod parse;
pub mod serialize;
pub mod stats;
pub mod store;
pub mod symbol;
pub mod tree;

pub use error::{XmlError, XmlResult};
pub use frag::Frag;
pub use ids::{DocName, NodeAddr, PeerId, QueryName, ServiceName};
pub use label::Label;
pub use stats::CopyStats;
pub use store::{DocStore, Document};
pub use symbol::Symbol;
pub use tree::{Node, NodeId, NodeKind, Tree};
