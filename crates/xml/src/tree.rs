//! Arena-backed unranked, unordered XML trees with copy-on-write sharing.
//!
//! The paper (§2.1) views an XML tree as *unranked and unordered*: each
//! internal node has a label from `L` and an identifier from `N`, each leaf
//! a label (we also model text leaves, which the paper elides). A [`Tree`]
//! holds its nodes in a single arena; a [`NodeId`] is an index into that
//! arena. This gives O(1) navigation and stable identifiers — the paper's
//! `n` in `n@p` — for the lifetime of the tree.
//!
//! ## Zero-copy handles
//!
//! The arena lives behind an `Arc`, which makes every [`Tree`] value a
//! cheap **handle**: `Clone` is a reference-count bump, [`Tree::subtree`]
//! and [`Tree::share`] return O(1) views of a subtree (the latter as an
//! immutable [`Frag`]), and mutation materializes a
//! private copy of the arena only when it is actually shared
//! (copy-on-write). Transfers, rewrites and pattern matches therefore move
//! subtrees by handle; the only deep copies left are explicit
//! ([`Tree::deep_copy`], [`Tree::graft`]) or forced by mutating a shared
//! arena. All copies and shares are accounted in [`crate::stats`].
//!
//! Sibling *storage* order is preserved (it makes serialization
//! deterministic and debugging sane) but carries no semantics: equivalence
//! ([`crate::equiv`]) and query evaluation treat children as a multiset.

use crate::error::{XmlError, XmlResult};
use crate::frag::Frag;
use crate::label::Label;
use std::fmt;
use std::sync::Arc;

/// Identifier of a node inside one [`Tree`] — an element of the paper's
/// node-id set `N`, scoped to the owning document.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(u32);

impl NodeId {
    /// The arena index.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Rebuild an id from a raw index — used when decoding node addresses
    /// received over the network, where the index is attacker- (or at
    /// least peer-) controlled. An index that does not fit the `u32`
    /// arena space is a typed error, not a panic.
    pub fn from_index(i: usize) -> XmlResult<Self> {
        match u32::try_from(i) {
            Ok(v) => Ok(NodeId(v)),
            Err(_) => Err(XmlError::IndexOverflow { index: i as u64 }),
        }
    }

    /// Internal constructor for freshly allocated arena slots, whose
    /// indices are bounded by the allocation path itself.
    fn from_arena(i: usize) -> Self {
        NodeId(u32::try_from(i).expect("arena exceeds u32::MAX nodes"))
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// What a node is: an element with a label and attributes, or a text leaf.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeKind {
    /// An internal (or leaf) element node: `<label a="v">…</label>`.
    Element {
        /// The element label from `L`.
        label: Label,
        /// Attributes in insertion order. Names are unique.
        attrs: Vec<(Label, String)>,
    },
    /// A text leaf.
    Text(String),
}

/// One node of the arena.
#[derive(Debug, Clone)]
pub struct Node {
    pub(crate) kind: NodeKind,
    pub(crate) parent: Option<NodeId>,
    pub(crate) children: Vec<NodeId>,
}

impl Node {
    /// The node's kind.
    pub fn kind(&self) -> &NodeKind {
        &self.kind
    }

    /// The node's parent, if it is not the root (or detached). For
    /// subtree views prefer [`Tree::parent`], which clips at the view
    /// root.
    pub fn parent(&self) -> Option<NodeId> {
        self.parent
    }

    /// The node's children, in storage order.
    pub fn children(&self) -> &[NodeId] {
        &self.children
    }

    /// The element label, if this is an element.
    pub fn label(&self) -> Option<Label> {
        match &self.kind {
            NodeKind::Element { label, .. } => Some(*label),
            NodeKind::Text(_) => None,
        }
    }

    /// The text content, if this is a text leaf.
    pub fn as_text(&self) -> Option<&str> {
        match &self.kind {
            NodeKind::Text(t) => Some(t),
            NodeKind::Element { .. } => None,
        }
    }

    /// True for element nodes.
    pub fn is_element(&self) -> bool {
        matches!(self.kind, NodeKind::Element { .. })
    }
}

/// Approximate heap footprint of one node (arena slot + label/attr/text
/// payloads + child-index vector) — the unit of the copy/share counters.
pub(crate) fn node_heap_bytes(n: &Node) -> u64 {
    let base = std::mem::size_of::<Node>() as u64
        + (n.children.len() * std::mem::size_of::<NodeId>()) as u64;
    match &n.kind {
        NodeKind::Element { label, attrs } => {
            base + label.len() as u64
                + attrs.iter().map(|(k, v)| k.len() + v.len()).sum::<usize>() as u64
        }
        NodeKind::Text(t) => base + t.len() as u64,
    }
}

/// An unranked, unordered XML tree: a copy-on-write handle onto a shared
/// node arena, plus the root the handle is scoped to.
pub struct Tree {
    pub(crate) nodes: Arc<Vec<Node>>,
    root: NodeId,
    /// Approximate heap bytes of the referenced arena, maintained
    /// incrementally so clone/COW accounting stays O(1).
    pub(crate) arena_bytes: u64,
}

impl Clone for Tree {
    /// O(1): bumps the arena's reference count. The bytes a pre-COW
    /// deep clone would have copied are credited to
    /// [`crate::stats::CopyStats::bytes_shared`].
    fn clone(&self) -> Self {
        crate::stats::record_share(self.nodes.len() as u64, self.arena_bytes);
        Tree {
            nodes: Arc::clone(&self.nodes),
            root: self.root,
            arena_bytes: self.arena_bytes,
        }
    }
}

impl Tree {
    /// Create a tree whose root is an element labeled `root_label`.
    pub fn new(root_label: impl Into<Label>) -> Self {
        let root = Node {
            kind: NodeKind::Element {
                label: root_label.into(),
                attrs: Vec::new(),
            },
            parent: None,
            children: Vec::new(),
        };
        let bytes = node_heap_bytes(&root);
        Tree {
            nodes: Arc::new(vec![root]),
            root: NodeId(0),
            arena_bytes: bytes,
        }
    }

    /// The root node id.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Rebuild a handle from raw parts (used by [`Frag`] views). Does not
    /// touch the copy/share counters.
    pub(crate) fn from_parts(nodes: Arc<Vec<Node>>, root: NodeId, arena_bytes: u64) -> Tree {
        Tree {
            nodes,
            root,
            arena_bytes,
        }
    }

    /// Number of nodes ever allocated in the arena (including detached
    /// tombstones and, for subtree views, nodes outside the view). Use
    /// [`Tree::subtree_size`] of the root for live counts.
    pub fn arena_len(&self) -> usize {
        self.nodes.len()
    }

    /// Number of nodes reachable from the root.
    pub fn live_len(&self) -> usize {
        self.subtree_size(self.root)
    }

    /// Access a node. Panics on an id not from this tree.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Mutable arena access: materializes a private copy first if the
    /// arena is shared (copy-on-write).
    fn nodes_mut(&mut self) -> &mut Vec<Node> {
        if Arc::strong_count(&self.nodes) > 1 {
            crate::stats::record_cow();
            crate::stats::record_copy(self.nodes.len() as u64, self.arena_bytes);
        }
        Arc::make_mut(&mut self.nodes)
    }

    fn node_mut(&mut self, id: NodeId) -> &mut Node {
        let idx = id.index();
        &mut self.nodes_mut()[idx]
    }

    /// Is `id` a valid index in this arena?
    pub fn contains(&self, id: NodeId) -> bool {
        id.index() < self.nodes.len()
    }

    /// The element label of `id`, or `None` for text nodes.
    pub fn label(&self, id: NodeId) -> Option<Label> {
        self.node(id).label()
    }

    /// Children of `id`, in storage order.
    pub fn children(&self, id: NodeId) -> &[NodeId] {
        &self.node(id).children
    }

    /// Parent of `id`, clipped at this handle's root: the root of a
    /// subtree view reports no parent even though the shared arena keeps
    /// the original link (re-sharing the arena must not leak structure
    /// above the view).
    pub fn parent(&self, id: NodeId) -> Option<NodeId> {
        if id == self.root {
            None
        } else {
            self.node(id).parent
        }
    }

    /// Allocate a detached element node.
    pub fn new_element(&mut self, label: impl Into<Label>) -> NodeId {
        self.alloc(NodeKind::Element {
            label: label.into(),
            attrs: Vec::new(),
        })
    }

    /// Allocate a detached text node.
    pub fn new_text(&mut self, text: impl Into<String>) -> NodeId {
        self.alloc(NodeKind::Text(text.into()))
    }

    fn alloc(&mut self, kind: NodeKind) -> NodeId {
        let node = Node {
            kind,
            parent: None,
            children: Vec::new(),
        };
        self.arena_bytes += node_heap_bytes(&node);
        let nodes = self.nodes_mut();
        let id = NodeId::from_arena(nodes.len());
        nodes.push(node);
        id
    }

    /// Attach a detached node as a child of `parent`.
    pub fn append_child(&mut self, parent: NodeId, child: NodeId) -> XmlResult<()> {
        if !self.contains(parent) {
            return Err(XmlError::InvalidNode { index: parent.0 });
        }
        if !self.contains(child) {
            return Err(XmlError::InvalidNode { index: child.0 });
        }
        if parent == child {
            return Err(XmlError::Structure("cannot attach a node to itself".into()));
        }
        if child == self.root {
            return Err(XmlError::Structure(
                "cannot attach the root under another node".into(),
            ));
        }
        if !self.node(parent).is_element() {
            return Err(XmlError::NotAnElement { index: parent.0 });
        }
        if self.node(child).parent.is_some() {
            return Err(XmlError::Structure(format!(
                "node {child} already has a parent; detach it first"
            )));
        }
        // Reject cycles: parent must not be a descendant of child.
        let mut cur = Some(parent);
        while let Some(c) = cur {
            if c == child {
                return Err(XmlError::Structure(
                    "attachment would create a cycle".into(),
                ));
            }
            cur = self.node(c).parent;
        }
        self.node_mut(child).parent = Some(parent);
        self.node_mut(parent).children.push(child);
        self.arena_bytes += std::mem::size_of::<NodeId>() as u64;
        Ok(())
    }

    /// Convenience: allocate and attach an element child, returning its id.
    pub fn add_element(&mut self, parent: NodeId, label: impl Into<Label>) -> NodeId {
        let id = self.new_element(label);
        self.append_child(parent, id)
            .expect("add_element: parent must be a valid element");
        id
    }

    /// Convenience: allocate and attach a text child, returning its id.
    pub fn add_text(&mut self, parent: NodeId, text: impl Into<String>) -> NodeId {
        let id = self.new_text(text);
        self.append_child(parent, id)
            .expect("add_text: parent must be a valid element");
        id
    }

    /// Convenience: `<label>text</label>` under `parent`.
    pub fn add_text_element(
        &mut self,
        parent: NodeId,
        label: impl Into<Label>,
        text: impl Into<String>,
    ) -> NodeId {
        let el = self.add_element(parent, label);
        self.add_text(el, text);
        el
    }

    /// Detach `id` from its parent. The subtree stays in the arena (it can
    /// be re-attached) but is no longer reachable from the root.
    pub fn detach(&mut self, id: NodeId) -> XmlResult<()> {
        if !self.contains(id) {
            return Err(XmlError::InvalidNode { index: id.0 });
        }
        if id == self.root {
            return Err(XmlError::Structure("cannot detach the root".into()));
        }
        if let Some(p) = self.node(id).parent {
            let siblings = &mut self.node_mut(p).children;
            siblings.retain(|&c| c != id);
            self.node_mut(id).parent = None;
        }
        Ok(())
    }

    /// Set an attribute on an element (replacing an existing value).
    pub fn set_attr(
        &mut self,
        id: NodeId,
        name: impl Into<Label>,
        value: impl Into<String>,
    ) -> XmlResult<()> {
        let name = name.into();
        let value = value.into();
        if !self.contains(id) {
            return Err(XmlError::InvalidNode { index: id.0 });
        }
        let added = name.len() as u64 + value.len() as u64;
        match &mut self.node_mut(id).kind {
            NodeKind::Element { attrs, .. } => {
                if let Some(slot) = attrs.iter_mut().find(|(n, _)| *n == name) {
                    let removed = name.len() as u64 + slot.1.len() as u64;
                    slot.1 = value;
                    self.arena_bytes = self.arena_bytes.saturating_sub(removed) + added;
                } else {
                    attrs.push((name, value));
                    self.arena_bytes += added;
                }
                Ok(())
            }
            NodeKind::Text(_) => Err(XmlError::NotAnElement { index: id.0 }),
        }
    }

    /// Read an attribute value.
    pub fn attr(&self, id: NodeId, name: &str) -> Option<&str> {
        match &self.node(id).kind {
            NodeKind::Element { attrs, .. } => attrs
                .iter()
                .find(|(n, _)| n.as_str() == name)
                .map(|(_, v)| v.as_str()),
            NodeKind::Text(_) => None,
        }
    }

    /// All attributes of an element (empty for text nodes).
    pub fn attrs(&self, id: NodeId) -> &[(Label, String)] {
        match &self.node(id).kind {
            NodeKind::Element { attrs, .. } => attrs,
            NodeKind::Text(_) => &[],
        }
    }

    /// Concatenated text of all text descendants of `id` (the XPath
    /// `string()` value).
    pub fn text(&self, id: NodeId) -> String {
        let mut out = String::new();
        self.collect_text(id, &mut out);
        out
    }

    fn collect_text(&self, id: NodeId, out: &mut String) {
        match &self.node(id).kind {
            NodeKind::Text(t) => out.push_str(t),
            NodeKind::Element { .. } => {
                for &c in &self.node(id).children {
                    self.collect_text(c, out);
                }
            }
        }
    }

    /// Preorder traversal of the subtree rooted at `id` (including `id`).
    pub fn descendants_with_self(&self, id: NodeId) -> Descendants<'_> {
        Descendants {
            tree: self,
            stack: vec![id],
        }
    }

    /// Preorder traversal of the strict descendants of `id`.
    pub fn descendants(&self, id: NodeId) -> Descendants<'_> {
        let mut stack: Vec<NodeId> = self.children(id).to_vec();
        stack.reverse();
        Descendants { tree: self, stack }
    }

    /// Child elements of `id` with the given label.
    pub fn children_labeled<'a>(
        &'a self,
        id: NodeId,
        label: &'a str,
    ) -> impl Iterator<Item = NodeId> + 'a {
        self.children(id)
            .iter()
            .copied()
            .filter(move |&c| self.label(c).is_some_and(|l| l.as_str() == label))
    }

    /// First child element with the given label.
    pub fn first_child_labeled(&self, id: NodeId, label: &str) -> Option<NodeId> {
        self.children_labeled(id, label).next()
    }

    /// Descendant elements (preorder, excluding `id`) with the given label.
    pub fn descendants_labeled<'a>(
        &'a self,
        id: NodeId,
        label: &'a str,
    ) -> impl Iterator<Item = NodeId> + 'a {
        self.descendants(id)
            .filter(move |&n| self.label(n).is_some_and(|l| l.as_str() == label))
    }

    /// Number of nodes in the subtree rooted at `id`.
    pub fn subtree_size(&self, id: NodeId) -> usize {
        self.descendants_with_self(id).count()
    }

    /// Depth of the subtree rooted at `id` (a single node has depth 1).
    pub fn depth(&self, id: NodeId) -> usize {
        1 + self
            .children(id)
            .iter()
            .map(|&c| self.depth(c))
            .max()
            .unwrap_or(0)
    }

    /// Approximate heap footprint of the subtree rooted at `id`.
    pub(crate) fn subtree_heap_bytes(&self, id: NodeId) -> u64 {
        self.descendants_with_self(id)
            .map(|n| node_heap_bytes(self.node(n)))
            .sum()
    }

    /// Credit a subtree share to the copy-avoided counters. The walk is
    /// O(|subtree|) — proportional to the copy it replaced, and far
    /// cheaper (no allocation) — so accounting never changes the
    /// asymptotics of a share.
    fn credit_subtree_share(&self, id: NodeId) {
        let (mut nodes, mut bytes) = (0u64, 0u64);
        for n in self.descendants_with_self(id) {
            nodes += 1;
            bytes += node_heap_bytes(self.node(n));
        }
        crate::stats::record_handle_share();
        crate::stats::record_share(nodes, bytes);
    }

    /// Share the subtree rooted at `id` as an immutable [`Frag`] handle —
    /// O(1), no nodes are copied. This is the currency for moving
    /// subtrees between engine layers within a peer.
    pub fn share(&self, id: NodeId) -> XmlResult<Frag> {
        if !self.contains(id) {
            return Err(XmlError::InvalidNode { index: id.0 });
        }
        self.credit_subtree_share(id);
        Ok(Frag::from_parts(
            Arc::clone(&self.nodes),
            id,
            self.arena_bytes,
        ))
    }

    /// Share the whole tree as a [`Frag`] — O(1).
    pub fn share_root(&self) -> Frag {
        self.share(self.root)
            .expect("the root is always a valid node")
    }

    /// A zero-copy [`Tree`] handle scoped to the subtree rooted at `id`:
    /// shares the arena, so it is O(1) and keeps the whole arena alive.
    /// Use [`Tree::deep_copy`] instead when the source is large and
    /// short-lived and the subtree must outlive it compactly.
    pub fn subtree(&self, id: NodeId) -> XmlResult<Tree> {
        if !self.contains(id) {
            return Err(XmlError::InvalidNode { index: id.0 });
        }
        self.credit_subtree_share(id);
        Ok(Tree {
            nodes: Arc::clone(&self.nodes),
            root: id,
            arena_bytes: self.arena_bytes,
        })
    }

    /// Extract the subtree rooted at `id` into a fresh, compact [`Tree`].
    ///
    /// If `id` is a text node, it is wrapped — the result's root is always
    /// an element — so callers should normally pass elements.
    pub fn deep_copy(&self, id: NodeId) -> Tree {
        crate::stats::record_copy(self.subtree_size(id) as u64, self.subtree_heap_bytes(id));
        match &self.node(id).kind {
            NodeKind::Element { label, attrs } => {
                let mut t = Tree::new(*label);
                t.set_root_attrs(attrs.clone());
                let root = t.root();
                for &c in self.children(id) {
                    self.copy_into(c, &mut t, root);
                }
                t
            }
            NodeKind::Text(s) => {
                let mut t = Tree::new("text");
                let root = t.root();
                t.add_text(root, s.clone());
                t
            }
        }
    }

    /// Replace the root's attributes (used by copy paths).
    fn set_root_attrs(&mut self, new_attrs: Vec<(Label, String)>) {
        self.arena_bytes += new_attrs
            .iter()
            .map(|(k, v)| (k.len() + v.len()) as u64)
            .sum::<u64>();
        let root = self.root;
        if let NodeKind::Element { attrs, .. } = &mut self.node_mut(root).kind {
            *attrs = new_attrs;
        }
    }

    fn copy_into(&self, id: NodeId, dst: &mut Tree, dst_parent: NodeId) {
        match &self.node(id).kind {
            NodeKind::Element { label, attrs } => {
                let el = dst.add_element(dst_parent, *label);
                for (n, v) in attrs {
                    dst.set_attr(el, *n, v.clone()).expect("element");
                }
                for &c in self.children(id) {
                    self.copy_into(c, dst, el);
                }
            }
            NodeKind::Text(s) => {
                dst.add_text(dst_parent, s.clone());
            }
        }
    }

    /// Copy the subtree of `src` rooted at `src_node` under `parent` in
    /// `self`; returns the id of the copied root in `self`.
    ///
    /// This is the materializing operation — node ids are reallocated in
    /// this arena, so the copy is unavoidable. To move a subtree *within*
    /// a peer without copying, pass handles ([`Tree::share`] /
    /// [`Tree::subtree`]) instead and graft only at the final sink.
    pub fn graft(&mut self, parent: NodeId, src: &Tree, src_node: NodeId) -> XmlResult<NodeId> {
        if !self.contains(parent) {
            return Err(XmlError::InvalidNode { index: parent.0 });
        }
        if !self.node(parent).is_element() {
            return Err(XmlError::NotAnElement { index: parent.0 });
        }
        crate::stats::record_copy(
            src.subtree_size(src_node) as u64,
            src.subtree_heap_bytes(src_node),
        );
        Ok(self.graft_rec(parent, src, src_node))
    }

    /// Graft a shared [`Frag`] under `parent`: the frag's nodes are copied
    /// into this arena (ids are arena-scoped, so a graft is where
    /// materialization genuinely happens), returning the new subtree
    /// root. Sharing stays intact on the frag side.
    pub fn graft_frag(&mut self, parent: NodeId, frag: &Frag) -> XmlResult<NodeId> {
        let view = frag.view();
        self.graft(parent, &view, frag.root())
    }

    fn graft_rec(&mut self, parent: NodeId, src: &Tree, src_node: NodeId) -> NodeId {
        match &src.node(src_node).kind {
            NodeKind::Element { label, attrs } => {
                let el = self.add_element(parent, *label);
                for (n, v) in attrs {
                    self.set_attr(el, *n, v.clone()).expect("element");
                }
                for &c in src.children(src_node) {
                    self.graft_rec(el, src, c);
                }
                el
            }
            NodeKind::Text(s) => self.add_text(parent, s.clone()),
        }
    }

    /// Replace the children of `id` with nothing (prune the subtree below).
    pub fn clear_children(&mut self, id: NodeId) {
        let children = std::mem::take(&mut self.node_mut(id).children);
        for c in children {
            self.node_mut(c).parent = None;
        }
    }

    /// Do two handles reference the same arena (structural sharing)?
    pub fn shares_arena_with(&self, other: &Tree) -> bool {
        Arc::ptr_eq(&self.nodes, &other.nodes)
    }
}

impl fmt::Debug for Tree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tree({})", self.serialize_node(self.root))
    }
}

impl PartialEq for Tree {
    /// *Ordered* structural equality of the live trees (labels, attributes
    /// and children in storage order). For the AXML model's unordered
    /// equivalence use [`crate::equiv::tree_equiv`] instead.
    fn eq(&self, other: &Self) -> bool {
        if Arc::ptr_eq(&self.nodes, &other.nodes) && self.root == other.root {
            return true;
        }
        fn node_eq(a: &Tree, na: NodeId, b: &Tree, nb: NodeId) -> bool {
            match (&a.node(na).kind, &b.node(nb).kind) {
                (NodeKind::Text(x), NodeKind::Text(y)) => x == y,
                (
                    NodeKind::Element {
                        label: la,
                        attrs: aa,
                    },
                    NodeKind::Element {
                        label: lb,
                        attrs: ab,
                    },
                ) => {
                    la == lb
                        && aa == ab
                        && a.children(na).len() == b.children(nb).len()
                        && a.children(na)
                            .iter()
                            .zip(b.children(nb))
                            .all(|(&ca, &cb)| node_eq(a, ca, b, cb))
                }
                _ => false,
            }
        }
        node_eq(self, self.root, other, other.root)
    }
}

impl Eq for Tree {}

/// Preorder iterator over a subtree. See [`Tree::descendants_with_self`].
pub struct Descendants<'a> {
    tree: &'a Tree,
    stack: Vec<NodeId>,
}

impl Iterator for Descendants<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let id = self.stack.pop()?;
        // Push children reversed so the traversal visits them in storage
        // order (purely cosmetic: order is non-semantic).
        for &c in self.tree.children(id).iter().rev() {
            self.stack.push(c);
        }
        Some(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Tree {
        let mut t = Tree::new("catalog");
        let r = t.root();
        let p1 = t.add_element(r, "pkg");
        t.set_attr(p1, "name", "vim").unwrap();
        t.add_text_element(p1, "version", "9.1");
        let p2 = t.add_element(r, "pkg");
        t.set_attr(p2, "name", "gcc").unwrap();
        t.add_text_element(p2, "version", "13.2");
        t
    }

    #[test]
    fn build_and_navigate() {
        let t = sample();
        let r = t.root();
        assert_eq!(t.label(r).unwrap().as_str(), "catalog");
        assert_eq!(t.children(r).len(), 2);
        let pkgs: Vec<_> = t.children_labeled(r, "pkg").collect();
        assert_eq!(pkgs.len(), 2);
        assert_eq!(t.attr(pkgs[0], "name"), Some("vim"));
        assert_eq!(t.attr(pkgs[1], "name"), Some("gcc"));
        assert_eq!(t.parent(pkgs[0]), Some(r));
        assert_eq!(t.parent(r), None);
    }

    #[test]
    fn text_aggregation() {
        let t = sample();
        let r = t.root();
        assert_eq!(t.text(r), "9.113.2");
        let v = t.descendants_labeled(r, "version").next().unwrap();
        assert_eq!(t.text(v), "9.1");
    }

    #[test]
    fn preorder_counts() {
        let t = sample();
        // catalog, 2×(pkg, version, text) = 7
        assert_eq!(t.subtree_size(t.root()), 7);
        assert_eq!(t.descendants(t.root()).count(), 6);
        assert_eq!(t.depth(t.root()), 4);
    }

    #[test]
    fn detach_and_reattach() {
        let mut t = sample();
        let r = t.root();
        let pkg = t.first_child_labeled(r, "pkg").unwrap();
        t.detach(pkg).unwrap();
        assert_eq!(t.children(r).len(), 1);
        assert_eq!(t.parent(pkg), None);
        t.append_child(r, pkg).unwrap();
        assert_eq!(t.children(r).len(), 2);
        assert!(t.detach(r).is_err(), "root cannot be detached");
    }

    #[test]
    fn append_rejects_cycles_and_double_parents() {
        let mut t = Tree::new("a");
        let r = t.root();
        let b = t.add_element(r, "b");
        let c = t.add_element(b, "c");
        // b already has a parent
        assert!(matches!(t.append_child(c, b), Err(XmlError::Structure(_))));
        t.detach(b).unwrap();
        // now attaching b under its own descendant c is a cycle
        assert!(matches!(t.append_child(c, b), Err(XmlError::Structure(_))));
        assert!(t.append_child(r, b).is_ok());
        // self-attachment
        let d = t.new_element("d");
        assert!(t.append_child(d, d).is_err());
        // the root can never become a child
        assert!(matches!(t.append_child(b, r), Err(XmlError::Structure(_))));
    }

    #[test]
    fn append_rejects_text_parent() {
        let mut t = Tree::new("a");
        let r = t.root();
        let txt = t.add_text(r, "hello");
        let e = t.new_element("e");
        assert!(matches!(
            t.append_child(txt, e),
            Err(XmlError::NotAnElement { .. })
        ));
    }

    #[test]
    fn deep_copy_is_compact_and_equal() {
        let t = sample();
        let pkg = t.first_child_labeled(t.root(), "pkg").unwrap();
        let sub = t.deep_copy(pkg);
        assert_eq!(sub.label(sub.root()).unwrap().as_str(), "pkg");
        assert_eq!(sub.attr(sub.root(), "name"), Some("vim"));
        assert_eq!(sub.live_len(), 3);
        assert_eq!(sub.arena_len(), 3);
    }

    #[test]
    fn graft_copies_subtree() {
        let src = sample();
        let mut dst = Tree::new("mirror");
        let got = dst.graft(dst.root(), &src, src.root()).unwrap();
        assert_eq!(dst.label(got).unwrap().as_str(), "catalog");
        assert_eq!(dst.subtree_size(dst.root()), 8);
        // grafting under a text node fails
        let txt = dst.add_text(dst.root(), "x");
        assert!(dst.graft(txt, &src, src.root()).is_err());
    }

    #[test]
    fn set_attr_replaces() {
        let mut t = Tree::new("a");
        let r = t.root();
        t.set_attr(r, "k", "1").unwrap();
        t.set_attr(r, "k", "2").unwrap();
        assert_eq!(t.attr(r, "k"), Some("2"));
        assert_eq!(t.attrs(r).len(), 1);
        let txt = t.add_text(r, "x");
        assert!(t.set_attr(txt, "k", "v").is_err());
        assert!(t.attr(txt, "k").is_none());
        assert!(t.attrs(txt).is_empty());
    }

    #[test]
    fn clear_children_prunes() {
        let mut t = sample();
        let r = t.root();
        t.clear_children(r);
        assert_eq!(t.children(r).len(), 0);
        assert_eq!(t.live_len(), 1);
    }

    // ---- zero-copy handle semantics -----------------------------------

    #[test]
    fn clone_is_shared_until_mutation() {
        let t = sample();
        let before = t.serialize();
        let mut c = t.clone();
        assert!(t.shares_arena_with(&c));
        assert_eq!(c.serialize(), before);
        // Mutation of the clone materializes a private arena…
        let r = c.root();
        c.add_element(r, "extra");
        assert!(!t.shares_arena_with(&c));
        // …and the original is untouched.
        assert_eq!(t.serialize(), before);
        assert!(c.serialize().contains("<extra/>"));
    }

    #[test]
    fn subtree_view_is_zero_copy() {
        let t = sample();
        let pkg = t.first_child_labeled(t.root(), "pkg").unwrap();
        let view = t.subtree(pkg).unwrap();
        assert!(view.shares_arena_with(&t));
        assert_eq!(view.root(), pkg);
        assert_eq!(view.serialize(), t.serialize_node(pkg));
        // the view root reports no parent even though the arena has one
        assert_eq!(view.parent(view.root()), None);
        assert_eq!(view.live_len(), 3);
        // equality against a compact copy
        assert_eq!(view, t.deep_copy(pkg));
        // invalid ids are typed errors
        assert!(t.subtree(NodeId(999)).is_err());
    }

    #[test]
    fn mutating_a_view_leaves_the_source_alone() {
        let t = sample();
        let pkg = t.first_child_labeled(t.root(), "pkg").unwrap();
        let mut view = t.subtree(pkg).unwrap();
        let before = t.serialize();
        let vr = view.root();
        view.add_text_element(vr, "arch", "x86_64");
        assert!(!view.shares_arena_with(&t));
        assert_eq!(t.serialize(), before);
        assert!(view.serialize().contains("arch"));
    }

    #[test]
    fn share_and_graft_frag_roundtrip() {
        let t = sample();
        let pkg = t.first_child_labeled(t.root(), "pkg").unwrap();
        let frag = t.share(pkg).unwrap();
        assert_eq!(frag.serialize(), t.serialize_node(pkg));
        let mut dst = Tree::new("mirror");
        let r = dst.root();
        let got = dst.graft_frag(r, &frag).unwrap();
        assert_eq!(dst.serialize_node(got), t.serialize_node(pkg));
        assert!(t.share(NodeId(999)).is_err());
    }

    #[test]
    fn from_index_is_fallible() {
        assert_eq!(NodeId::from_index(7).unwrap(), NodeId(7));
        let too_big = u32::MAX as usize + 1;
        assert!(matches!(
            NodeId::from_index(too_big),
            Err(XmlError::IndexOverflow { .. })
        ));
    }

    #[test]
    fn copy_counters_account_clone_and_cow() {
        use crate::stats::CopyStats;
        let t = sample();
        let s0 = CopyStats::snapshot();
        let mut c = t.clone(); // shared: counts as avoided copy

        // Counters are process-wide, so parallel tests may add to the
        // delta; assert monotone lower bounds only.
        let s1 = CopyStats::snapshot().delta_since(&s0);
        assert!(s1.nodes_shared >= 7, "nodes_shared = {}", s1.nodes_shared);
        let r = c.root();
        c.add_element(r, "extra"); // forces COW materialization
        let s2 = CopyStats::snapshot().delta_since(&s0);
        assert!(s2.cow_materializations >= 1);
        assert!(s2.nodes_copied >= 7, "nodes_copied = {}", s2.nodes_copied);
        // keep `t` alive across the mutation so the arena stays shared
        // (otherwise the clone above is the sole owner and no COW fires)
        assert_eq!(t.subtree_size(t.root()), 7);
    }
}
