//! Serialization of trees back to XML text, plus wire-size accounting.
//!
//! Two renderings are provided: a *compact* form (no insignificant
//! whitespace — this is what crosses the simulated network, and what the
//! cost model measures) and a *pretty* form for humans. The
//! [`Tree::serialized_size`] method computes the compact size **without
//! allocating the string**, because the optimizer's cost model calls it on
//! every candidate data transfer.

use crate::escape::{escape_attr, escape_text, escaped_text_len};
use crate::tree::{NodeId, NodeKind, Tree};

impl Tree {
    /// Serialize the subtree rooted at `id` compactly.
    pub fn serialize_node(&self, id: NodeId) -> String {
        let mut out = String::with_capacity(self.serialized_size_node(id));
        self.write_compact(id, &mut out);
        out
    }

    /// Serialize the whole tree compactly.
    pub fn serialize(&self) -> String {
        self.serialize_node(self.root())
    }

    /// Serialize the subtree rooted at `id` with indentation, for humans.
    pub fn pretty_node(&self, id: NodeId) -> String {
        let mut out = String::new();
        self.write_pretty(id, 0, &mut out);
        out
    }

    /// Pretty-print the whole tree.
    pub fn pretty(&self) -> String {
        self.pretty_node(self.root())
    }

    /// Exact byte length of [`Tree::serialize_node`], computed without
    /// building the string. This is the wire size used by the cost model.
    pub fn serialized_size_node(&self, id: NodeId) -> usize {
        match &self.node(id).kind {
            NodeKind::Text(t) => escaped_text_len(t),
            NodeKind::Element { label, attrs } => {
                let name = label.len();
                let attrs_len: usize = attrs
                    .iter()
                    // space + name + ="..."
                    .map(|(n, v)| 1 + n.len() + 2 + escape_attr(v).len() + 1)
                    .sum();
                let children = self.children(id);
                if children.is_empty() {
                    // <name attrs/>
                    1 + name + attrs_len + 2
                } else {
                    // <name attrs> + children + </name>
                    let inner: usize = children.iter().map(|&c| self.serialized_size_node(c)).sum();
                    (1 + name + attrs_len + 1) + inner + (2 + name + 1)
                }
            }
        }
    }

    /// Wire size of the whole tree.
    pub fn serialized_size(&self) -> usize {
        self.serialized_size_node(self.root())
    }

    fn write_compact(&self, id: NodeId, out: &mut String) {
        match &self.node(id).kind {
            NodeKind::Text(t) => out.push_str(&escape_text(t)),
            NodeKind::Element { label, attrs } => {
                out.push('<');
                out.push_str(label.as_str());
                for (n, v) in attrs {
                    out.push(' ');
                    out.push_str(n.as_str());
                    out.push_str("=\"");
                    out.push_str(&escape_attr(v));
                    out.push('"');
                }
                let children = self.children(id);
                if children.is_empty() {
                    out.push_str("/>");
                } else {
                    out.push('>');
                    for &c in children {
                        self.write_compact(c, out);
                    }
                    out.push_str("</");
                    out.push_str(label.as_str());
                    out.push('>');
                }
            }
        }
    }

    fn write_pretty(&self, id: NodeId, depth: usize, out: &mut String) {
        let pad = "  ".repeat(depth);
        match &self.node(id).kind {
            NodeKind::Text(t) => {
                out.push_str(&pad);
                out.push_str(&escape_text(t));
                out.push('\n');
            }
            NodeKind::Element { label, attrs } => {
                out.push_str(&pad);
                out.push('<');
                out.push_str(label.as_str());
                for (n, v) in attrs {
                    out.push(' ');
                    out.push_str(n.as_str());
                    out.push_str("=\"");
                    out.push_str(&escape_attr(v));
                    out.push('"');
                }
                let children = self.children(id);
                if children.is_empty() {
                    out.push_str("/>\n");
                } else if children.iter().any(|&c| !self.node(c).is_element()) {
                    // Mixed or text content: render the whole subtree
                    // compactly so indentation never pollutes text nodes.
                    out.push('>');
                    for &c in children {
                        self.write_compact(c, out);
                    }
                    out.push_str("</");
                    out.push_str(label.as_str());
                    out.push_str(">\n");
                } else {
                    out.push_str(">\n");
                    for &c in children {
                        self.write_pretty(c, depth + 1, out);
                    }
                    out.push_str(&pad);
                    out.push_str("</");
                    out.push_str(label.as_str());
                    out.push_str(">\n");
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_roundtrip_shape() {
        let mut t = Tree::new("a");
        let r = t.root();
        t.set_attr(r, "k", "v\"w").unwrap();
        let b = t.add_element(r, "b");
        t.add_text(b, "x<y");
        t.add_element(r, "c");
        assert_eq!(t.serialize(), r#"<a k="v&quot;w"><b>x&lt;y</b><c/></a>"#);
    }

    #[test]
    fn size_matches_serialization() {
        let mut t = Tree::new("root");
        let r = t.root();
        t.set_attr(r, "id", "1&2").unwrap();
        let child = t.add_element(r, "child");
        t.add_text(child, "some > text & more");
        t.add_element(r, "empty");
        assert_eq!(t.serialized_size(), t.serialize().len());
        assert_eq!(t.serialized_size_node(child), t.serialize_node(child).len());
    }

    #[test]
    fn pretty_is_indented() {
        let mut t = Tree::new("a");
        let r = t.root();
        t.add_text_element(r, "b", "hi");
        let p = t.pretty();
        assert!(p.contains("<a>\n"), "{p}");
        assert!(p.contains("  <b>hi</b>\n"), "{p}");
        assert!(p.ends_with("</a>\n"), "{p}");
    }

    #[test]
    fn pretty_empty_element() {
        let t = Tree::new("solo");
        assert_eq!(t.pretty(), "<solo/>\n");
    }
}
