//! Immutable subtree handles with structural sharing.
//!
//! A [`Frag`] is the currency for moving a subtree between engine layers
//! *without copying it*: it pins the owning arena alive through an `Arc`
//! and remembers which node is the subtree root. Creating one
//! ([`crate::tree::Tree::share`]), cloning one, and turning one back into
//! a [`Tree`] view are all O(1). Because a `Frag` offers no mutation API
//! at all, any number of consumers can hold the same subtree concurrently
//! — the single materializing operation is grafting it into another
//! arena ([`crate::tree::Tree::graft_frag`]), where fresh node ids make a
//! copy unavoidable.
//!
//! The mutability story is split deliberately: [`Tree`] is the
//! copy-on-write *owner* handle (mutation materializes a private arena if
//! shared), `Frag` is the immutable *reader* handle. Handing a `Frag` to
//! another component can never trigger a copy-on-write in the producer,
//! and the consumer can never observe mutation — snapshot isolation by
//! construction.

use crate::label::Label;
use crate::tree::{Node, NodeId, Tree};
use std::fmt;
use std::sync::Arc;

/// An immutable, cheaply cloneable handle on a subtree of some [`Tree`]'s
/// arena. See the module docs for the sharing model.
pub struct Frag {
    nodes: Arc<Vec<Node>>,
    root: NodeId,
    arena_bytes: u64,
}

impl Clone for Frag {
    /// O(1): bumps the arena's reference count.
    fn clone(&self) -> Self {
        crate::stats::record_handle_share();
        Frag {
            nodes: Arc::clone(&self.nodes),
            root: self.root,
            arena_bytes: self.arena_bytes,
        }
    }
}

impl Frag {
    pub(crate) fn from_parts(nodes: Arc<Vec<Node>>, root: NodeId, arena_bytes: u64) -> Frag {
        Frag {
            nodes,
            root,
            arena_bytes,
        }
    }

    /// The subtree root's id *in the owning arena* (stable for the
    /// arena's lifetime; meaningless in any other tree).
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// An internal read-only [`Tree`] view over the same arena — no
    /// counter traffic, used to reuse `Tree`'s traversal/serialization
    /// machinery.
    pub(crate) fn view(&self) -> Tree {
        Tree::from_parts(Arc::clone(&self.nodes), self.root, self.arena_bytes)
    }

    /// Promote the frag to a [`Tree`] handle — O(1), the arena is shared.
    /// The result is copy-on-write: mutating it materializes a private
    /// arena and leaves every other holder untouched.
    pub fn to_tree(&self) -> Tree {
        crate::stats::record_handle_share();
        self.view()
    }

    /// Extract the subtree into a fresh, compact [`Tree`] (a real copy;
    /// counted as one). Use when the frag must outlive a large source
    /// arena without pinning it.
    pub fn deep_copy(&self) -> Tree {
        let v = self.view();
        v.deep_copy(self.root)
    }

    /// The root element's label, or `None` if the frag is rooted at a
    /// text node.
    pub fn label(&self) -> Option<Label> {
        self.nodes[self.root.index()].label()
    }

    /// Number of nodes in the shared subtree.
    pub fn len(&self) -> usize {
        self.view().subtree_size(self.root)
    }

    /// True when the frag is a single node.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Serialize the subtree to compact XML text — byte-identical to
    /// serializing the same subtree from the owning tree.
    pub fn serialize(&self) -> String {
        self.view().serialize_node(self.root)
    }

    /// Serialized size in bytes (the wire-accounting measure), without
    /// building the string.
    pub fn serialized_size(&self) -> usize {
        self.view().serialized_size_node(self.root)
    }

    /// Do two frags share the same arena (structural sharing)?
    pub fn shares_arena_with(&self, other: &Frag) -> bool {
        Arc::ptr_eq(&self.nodes, &other.nodes)
    }

    /// Does this frag share its arena with `tree`?
    pub fn shares_arena_with_tree(&self, tree: &Tree) -> bool {
        Arc::ptr_eq(&self.nodes, &tree.nodes)
    }
}

impl fmt::Debug for Frag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Frag({})", self.serialize())
    }
}

impl PartialEq for Frag {
    /// Ordered structural equality of the subtrees (same semantics as
    /// [`Tree`]'s `PartialEq`); `Arc`-identical frags short-circuit.
    fn eq(&self, other: &Self) -> bool {
        if Arc::ptr_eq(&self.nodes, &other.nodes) && self.root == other.root {
            return true;
        }
        self.view() == other.view()
    }
}

impl Eq for Frag {}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Tree {
        let mut t = Tree::new("catalog");
        let r = t.root();
        let p = t.add_element(r, "pkg");
        t.set_attr(p, "name", "vim").unwrap();
        t.add_text_element(p, "version", "9.1");
        t
    }

    #[test]
    fn share_is_zero_copy_and_serializes_identically() {
        let t = sample();
        let pkg = t.first_child_labeled(t.root(), "pkg").unwrap();
        let f = t.share(pkg).unwrap();
        assert!(f.shares_arena_with_tree(&t));
        assert_eq!(f.serialize(), t.serialize_node(pkg));
        assert_eq!(f.serialized_size(), f.serialize().len());
        assert_eq!(f.label().unwrap().as_str(), "pkg");
        assert_eq!(f.len(), 3);
        assert!(!f.is_empty());
    }

    #[test]
    fn clones_share_and_compare_equal() {
        let t = sample();
        let f = t.share_root();
        let g = f.clone();
        assert!(f.shares_arena_with(&g));
        assert_eq!(f, g);
        // equality also holds across distinct arenas
        let h = f.deep_copy().share_root();
        assert!(!f.shares_arena_with(&h));
        assert_eq!(f, h);
    }

    #[test]
    fn to_tree_is_cow_isolated() {
        let t = sample();
        let f = t.share_root();
        let before = f.serialize();
        let mut promoted = f.to_tree();
        let r = promoted.root();
        promoted.add_element(r, "extra");
        // the frag (and the original tree) are untouched
        assert_eq!(f.serialize(), before);
        assert_eq!(t.serialize(), before);
        assert!(promoted.serialize().contains("<extra/>"));
    }

    #[test]
    fn text_rooted_frag() {
        let mut t = Tree::new("a");
        let r = t.root();
        let txt = t.add_text(r, "hello");
        let f = t.share(txt).unwrap();
        assert!(f.label().is_none());
        assert_eq!(f.serialize(), "hello");
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn graft_frag_counts_one_copy() {
        use crate::stats::CopyStats;
        let t = sample();
        let f = t.share_root();
        let s0 = CopyStats::snapshot();
        let mut dst = Tree::new("mirror");
        let r = dst.root();
        dst.graft_frag(r, &f).unwrap();
        // Counters are process-wide, so parallel tests may add to the
        // delta; assert the monotone lower bound only (sample has 4 nodes).
        let d = CopyStats::snapshot().delta_since(&s0);
        assert!(d.nodes_copied >= 4, "nodes_copied = {}", d.nodes_copied);
        assert!(d.bytes_copied > 0);
    }
}
