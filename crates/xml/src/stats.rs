//! Copy/share accounting for the zero-copy substrate.
//!
//! The whole point of the Symbol/[`crate::frag::Frag`] redesign is that
//! subtrees move by handle, not by copy. This module makes that claim
//! *measurable*: every materializing copy (an explicit
//! [`crate::tree::Tree::deep_copy`], a graft, or a copy-on-write
//! materialization of a shared arena) and every avoided copy (a handle
//! clone or share of an already-shared arena) is counted in process-wide
//! atomics. Benchmarks and tests read the counters through
//! [`CopyStats::snapshot`] / [`CopyStats::delta_since`]; the E9 fan-in
//! benchmark asserts on the copied/shared ratio.
//!
//! Counters are monotone and lock-free (`Relaxed` atomics — they are
//! telemetry, not synchronization). `reset` exists for single-threaded
//! measurement harnesses; concurrent tests should use deltas instead.

use std::sync::atomic::{AtomicU64, Ordering};

static BYTES_COPIED: AtomicU64 = AtomicU64::new(0);
static NODES_COPIED: AtomicU64 = AtomicU64::new(0);
static BYTES_SHARED: AtomicU64 = AtomicU64::new(0);
static NODES_SHARED: AtomicU64 = AtomicU64::new(0);
static COW_MATERIALIZATIONS: AtomicU64 = AtomicU64::new(0);
static HANDLE_SHARES: AtomicU64 = AtomicU64::new(0);

/// Record a materializing copy of `nodes` nodes / `bytes` heap bytes.
pub(crate) fn record_copy(nodes: u64, bytes: u64) {
    NODES_COPIED.fetch_add(nodes, Ordering::Relaxed);
    BYTES_COPIED.fetch_add(bytes, Ordering::Relaxed);
}

/// Record an avoided copy: a handle was shared instead of deep-copying
/// `nodes` nodes / `bytes` heap bytes.
pub(crate) fn record_share(nodes: u64, bytes: u64) {
    NODES_SHARED.fetch_add(nodes, Ordering::Relaxed);
    BYTES_SHARED.fetch_add(bytes, Ordering::Relaxed);
}

/// Record one copy-on-write materialization (a shared arena was cloned
/// because a mutation needed exclusive ownership).
pub(crate) fn record_cow() {
    COW_MATERIALIZATIONS.fetch_add(1, Ordering::Relaxed);
}

/// Record one O(1) subtree handle share ([`crate::tree::Tree::share`] /
/// [`crate::tree::Tree::subtree`]). Counted as an event only: the subtree's
/// byte size is not known in O(1), and the whole arena's bytes are already
/// credited at handle-clone time.
pub(crate) fn record_handle_share() {
    HANDLE_SHARES.fetch_add(1, Ordering::Relaxed);
}

/// A point-in-time snapshot of the process-wide copy/share counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CopyStats {
    /// Heap bytes materialized by deep copies (deep-copy, graft, and
    /// copy-on-write materialization).
    pub bytes_copied: u64,
    /// Nodes materialized by deep copies.
    pub nodes_copied: u64,
    /// Heap bytes whose copy was avoided by sharing a handle.
    pub bytes_shared: u64,
    /// Nodes whose copy was avoided by sharing a handle.
    pub nodes_shared: u64,
    /// Number of copy-on-write arena materializations.
    pub cow_materializations: u64,
    /// Number of O(1) subtree handle shares (`share`/`subtree`).
    pub handle_shares: u64,
}

impl CopyStats {
    /// Read the current counter values.
    pub fn snapshot() -> Self {
        CopyStats {
            bytes_copied: BYTES_COPIED.load(Ordering::Relaxed),
            nodes_copied: NODES_COPIED.load(Ordering::Relaxed),
            bytes_shared: BYTES_SHARED.load(Ordering::Relaxed),
            nodes_shared: NODES_SHARED.load(Ordering::Relaxed),
            cow_materializations: COW_MATERIALIZATIONS.load(Ordering::Relaxed),
            handle_shares: HANDLE_SHARES.load(Ordering::Relaxed),
        }
    }

    /// Counter growth since an earlier snapshot (saturating, so a
    /// concurrent `reset` cannot underflow).
    pub fn delta_since(&self, earlier: &CopyStats) -> CopyStats {
        CopyStats {
            bytes_copied: self.bytes_copied.saturating_sub(earlier.bytes_copied),
            nodes_copied: self.nodes_copied.saturating_sub(earlier.nodes_copied),
            bytes_shared: self.bytes_shared.saturating_sub(earlier.bytes_shared),
            nodes_shared: self.nodes_shared.saturating_sub(earlier.nodes_shared),
            cow_materializations: self
                .cow_materializations
                .saturating_sub(earlier.cow_materializations),
            handle_shares: self.handle_shares.saturating_sub(earlier.handle_shares),
        }
    }

    /// Zero all counters (single-threaded harnesses only).
    pub fn reset() {
        BYTES_COPIED.store(0, Ordering::Relaxed);
        NODES_COPIED.store(0, Ordering::Relaxed);
        BYTES_SHARED.store(0, Ordering::Relaxed);
        NODES_SHARED.store(0, Ordering::Relaxed);
        COW_MATERIALIZATIONS.store(0, Ordering::Relaxed);
        HANDLE_SHARES.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_delta() {
        let before = CopyStats::snapshot();
        record_copy(3, 100);
        record_share(5, 400);
        record_cow();
        record_handle_share();
        let d = CopyStats::snapshot().delta_since(&before);
        assert_eq!(d.nodes_copied, 3);
        assert_eq!(d.bytes_copied, 100);
        assert_eq!(d.nodes_shared, 5);
        assert_eq!(d.bytes_shared, 400);
        assert_eq!(d.cow_materializations, 1);
        assert_eq!(d.handle_shares, 1);
    }
}
