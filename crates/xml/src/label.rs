//! Interned labels — the paper's label alphabet `L`.
//!
//! Every element node carries a label from `L`. Labels repeat massively
//! across a document (think of `<pkg>` in a 10⁵-entry catalog), so we intern
//! them: a [`Label`] is a cheap-to-clone `Arc<str>` deduplicated through a
//! process-wide interner. Equality first compares pointers, falling back to
//! string comparison only for labels created before/after interner resets
//! (which never happens in practice — the interner is append-only).

use std::collections::HashMap;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Mutex, OnceLock};

/// An interned element/attribute label (a symbol of the alphabet `L`).
///
/// Cloning is an `Arc` bump; comparing two labels for equality is usually a
/// pointer comparison.
#[derive(Clone)]
pub struct Label(Arc<str>);

fn interner() -> &'static Mutex<HashMap<Box<str>, Arc<str>>> {
    static INTERNER: OnceLock<Mutex<HashMap<Box<str>, Arc<str>>>> = OnceLock::new();
    INTERNER.get_or_init(|| Mutex::new(HashMap::new()))
}

impl Label {
    /// Intern `s` and return its canonical handle.
    pub fn new(s: &str) -> Self {
        let mut map = interner().lock().expect("label interner poisoned");
        if let Some(a) = map.get(s) {
            return Label(Arc::clone(a));
        }
        let arc: Arc<str> = Arc::from(s);
        map.insert(Box::from(s), Arc::clone(&arc));
        Label(arc)
    }

    /// View the label as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// Length of the label text in bytes (used for wire-size accounting).
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the label is the empty string (never produced by the parser,
    /// but constructible through the API).
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl PartialEq for Label {
    fn eq(&self, other: &Self) -> bool {
        // Interning guarantees pointer equality for equal strings created
        // through `Label::new`; compare contents as a safety net.
        Arc::ptr_eq(&self.0, &other.0) || self.0 == other.0
    }
}

impl Eq for Label {}

impl PartialOrd for Label {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Label {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.cmp(&other.0)
    }
}

impl Hash for Label {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.0.hash(state);
    }
}

impl fmt::Debug for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Label({:?})", &*self.0)
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl From<&str> for Label {
    fn from(s: &str) -> Self {
        Label::new(s)
    }
}

impl From<String> for Label {
    fn from(s: String) -> Self {
        Label::new(&s)
    }
}

impl AsRef<str> for Label {
    fn as_ref(&self) -> &str {
        self.as_str()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_dedups() {
        let a = Label::new("catalog");
        let b = Label::new("catalog");
        assert!(Arc::ptr_eq(&a.0, &b.0));
        assert_eq!(a, b);
    }

    #[test]
    fn distinct_labels_differ() {
        assert_ne!(Label::new("a"), Label::new("b"));
    }

    #[test]
    fn ordering_is_lexicographic() {
        assert!(Label::new("aaa") < Label::new("aab"));
        assert!(Label::new("b") > Label::new("azzz"));
    }

    #[test]
    fn display_and_len() {
        let l = Label::new("pkg");
        assert_eq!(l.to_string(), "pkg");
        assert_eq!(l.len(), 3);
        assert!(!l.is_empty());
        assert!(Label::new("").is_empty());
    }

    #[test]
    fn hash_consistent_with_eq() {
        use std::collections::hash_map::DefaultHasher;
        let h = |l: &Label| {
            let mut s = DefaultHasher::new();
            l.hash(&mut s);
            s.finish()
        };
        assert_eq!(h(&Label::new("x")), h(&Label::new("x")));
    }
}
