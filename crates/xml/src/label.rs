//! Interned labels — the paper's label alphabet `L`.
//!
//! Historically `Label` was an `Arc<str>` deduplicated through a mutexed
//! interner; it is now an alias for [`crate::symbol::Symbol`], a `u32`
//! handle into a sharded, lock-free-read interner. The alias keeps the
//! established vocabulary (`Label` in data-model positions) while the
//! implementation lives in [`crate::symbol`]. All old call patterns —
//! `Label::new`, `as_str`, `From<&str>`, `Display` — still work; the
//! type is additionally `Copy` now, so clones are unnecessary.

pub use crate::symbol::Symbol as Label;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alias_is_the_symbol_type() {
        let a: Label = Label::new("catalog");
        let b: crate::symbol::Symbol = a;
        assert_eq!(a, b);
        assert_eq!(a.as_str(), "catalog");
    }

    #[test]
    fn old_call_patterns_still_work() {
        let l: Label = "pkg".into();
        assert_eq!(l.to_string(), "pkg");
        assert_eq!(l.len(), 3);
        assert!(!l.is_empty());
        let owned: Label = String::from("pkg").into();
        assert_eq!(l, owned);
    }
}
