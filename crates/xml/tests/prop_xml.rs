//! Property-based tests for the XML substrate: parser/serializer
//! round-trips, equivalence-relation laws, and size accounting.

use axml_xml::equiv::{canonical_hash, forest_equiv, tree_equiv, whole_tree_equiv};
use axml_xml::tree::{NodeId, Tree};
use proptest::prelude::*;

/// A recursive strategy generating arbitrary small trees.
fn arb_tree() -> impl Strategy<Value = Tree> {
    arb_node().prop_map(|spec| {
        let mut t = Tree::new(spec.label.as_str());
        let root = t.root();
        build(&mut t, root, &spec);
        t
    })
}

#[derive(Debug, Clone)]
struct NodeSpec {
    label: String,
    attrs: Vec<(String, String)>,
    text: Option<String>,
    children: Vec<NodeSpec>,
}

fn arb_label() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_.-]{0,6}".prop_map(|s| s)
}

fn arb_text() -> impl Strategy<Value = String> {
    // Includes XML-special characters to exercise escaping.
    proptest::collection::vec(
        prop_oneof![
            Just('&'),
            Just('<'),
            Just('>'),
            Just('"'),
            Just('\''),
            proptest::char::range('a', 'z'),
            proptest::char::range('A', 'Z'),
            Just(' '),
            Just('é'),
        ],
        1..12,
    )
    .prop_map(|cs| cs.into_iter().collect())
    .prop_filter("parser drops whitespace-only text", |s: &String| {
        !s.trim().is_empty()
    })
}

fn arb_node() -> impl Strategy<Value = NodeSpec> {
    let leaf = (
        arb_label(),
        proptest::collection::vec((arb_label(), arb_text()), 0..3),
        proptest::option::of(arb_text()),
    )
        .prop_map(|(label, mut attrs, text)| {
            attrs.sort();
            attrs.dedup_by(|a, b| a.0 == b.0);
            NodeSpec {
                label,
                attrs,
                text,
                children: vec![],
            }
        });
    leaf.prop_recursive(3, 24, 4, |inner| {
        (
            arb_label(),
            proptest::collection::vec((arb_label(), arb_text()), 0..3),
            proptest::option::of(arb_text()),
            proptest::collection::vec(inner, 0..4),
        )
            .prop_map(|(label, mut attrs, text, children)| {
                attrs.sort();
                attrs.dedup_by(|a, b| a.0 == b.0);
                NodeSpec {
                    label,
                    attrs,
                    text,
                    children,
                }
            })
    })
}

fn build(t: &mut Tree, at: NodeId, spec: &NodeSpec) {
    for (k, v) in &spec.attrs {
        t.set_attr(at, k.as_str(), v.clone()).unwrap();
    }
    if let Some(text) = &spec.text {
        t.add_text(at, text.clone());
    }
    for c in &spec.children {
        let el = t.add_element(at, c.label.as_str());
        build(t, el, c);
    }
}

/// Reverse the order of all children, recursively, producing a sibling
/// permutation of the input.
fn reversed(t: &Tree) -> Tree {
    fn rec(src: &Tree, s: NodeId, dst: &mut Tree, d: NodeId) {
        for (k, v) in src.attrs(s) {
            dst.set_attr(d, *k, v.clone()).unwrap();
        }
        for &c in src.children(s).iter().rev() {
            match src.node(c).as_text() {
                Some(txt) => {
                    dst.add_text(d, txt);
                }
                None => {
                    let el = dst.add_element(d, src.label(c).unwrap());
                    rec(src, c, dst, el);
                }
            }
        }
    }
    let mut out = Tree::new(t.label(t.root()).unwrap());
    let root = out.root();
    rec(t, t.root(), &mut out, root);
    out
}

proptest! {
    /// parse ∘ serialize = identity (up to the canonical form).
    #[test]
    fn parse_serialize_roundtrip(t in arb_tree()) {
        let text = t.serialize();
        let back = Tree::parse(&text).expect("serializer output must parse");
        prop_assert!(whole_tree_equiv(&t, &back), "roundtrip broke: {text}");
        // And byte-exact: serialization is deterministic on the same tree.
        prop_assert_eq!(back.serialize(), text);
    }

    /// Pretty output parses back to the same tree (whitespace dropping).
    #[test]
    fn pretty_roundtrip(t in arb_tree()) {
        let back = Tree::parse(&t.pretty()).expect("pretty output must parse");
        prop_assert!(whole_tree_equiv(&t, &back));
    }

    /// serialized_size never lies.
    #[test]
    fn size_accounting_exact(t in arb_tree()) {
        prop_assert_eq!(t.serialized_size(), t.serialize().len());
    }

    /// Equivalence is invariant under sibling permutation, and the
    /// canonical hash respects it.
    #[test]
    fn equiv_under_permutation(t in arb_tree()) {
        let r = reversed(&t);
        prop_assert!(whole_tree_equiv(&t, &r));
        prop_assert_eq!(canonical_hash(&t, t.root()), canonical_hash(&r, r.root()));
    }

    /// Equivalence is reflexive and symmetric; deep_copy preserves it.
    #[test]
    fn equiv_laws(a in arb_tree(), b in arb_tree()) {
        prop_assert!(whole_tree_equiv(&a, &a));
        prop_assert_eq!(whole_tree_equiv(&a, &b), whole_tree_equiv(&b, &a));
        let copy = a.deep_copy(a.root());
        prop_assert!(whole_tree_equiv(&a, &copy));
    }

    /// Grafting a subtree then deep-copying it back preserves equivalence.
    #[test]
    fn graft_roundtrip(t in arb_tree()) {
        let mut host = Tree::new("host");
        let hr = host.root();
        let grafted = host.graft(hr, &t, t.root()).unwrap();
        prop_assert!(tree_equiv(&host, grafted, &t, t.root()));
        let back = host.deep_copy(grafted);
        prop_assert!(whole_tree_equiv(&back, &t));
    }

    /// Forest equivalence is permutation-invariant.
    #[test]
    fn forest_permutation(ts in proptest::collection::vec(arb_tree(), 0..4)) {
        let mut rev = ts.clone();
        rev.reverse();
        prop_assert!(forest_equiv(&ts, &rev));
    }
}

proptest! {
    /// The parser never panics, whatever bytes it is fed — it either
    /// produces a tree or a positioned error.
    #[test]
    fn parser_never_panics(input in "\\PC*") {
        let _ = Tree::parse(&input);
    }

    /// XML-ish garbage (angle brackets, quotes, entities in random
    /// arrangements) also never panics and never produces a tree that
    /// fails to re-serialize.
    #[test]
    fn parser_total_on_xmlish_soup(
        parts in proptest::collection::vec(
            prop_oneof![
                Just("<".to_string()), Just(">".to_string()), Just("/".to_string()),
                Just("=".to_string()), Just("\"".to_string()), Just("'".to_string()),
                Just("&".to_string()), Just(";".to_string()), Just("<!--".to_string()),
                Just("-->".to_string()), Just("<![CDATA[".to_string()), Just("]]>".to_string()),
                Just("a".to_string()), Just("bc".to_string()), Just(" ".to_string()),
                Just("&amp;".to_string()), Just("<a>".to_string()), Just("</a>".to_string()),
            ],
            0..24,
        )
    ) {
        let input: String = parts.concat();
        if let Ok(t) = Tree::parse(&input) {
            // anything that parses must round-trip
            let again = Tree::parse(&t.serialize()).unwrap();
            prop_assert!(whole_tree_equiv(&t, &again));
        }
    }
}
