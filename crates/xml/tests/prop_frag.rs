//! Property tests for the zero-copy substrate: `Frag` share/graft
//! round-trips, copy-on-write snapshot isolation, and structural-sharing
//! invariants.
//!
//! The central claim of the Symbol/Frag redesign is that handles are
//! *observationally identical* to deep clones: serialization and canonical
//! equivalence must be bit-identical whether a subtree moved by handle or
//! by copy. These tests drive random trees (proptest) and random mutation
//! programs (a seeded `axml_prng::SplitMix64`) against a deep-clone
//! oracle.

use axml_prng::SplitMix64;
use axml_xml::equiv::{canonical_hash, whole_tree_equiv};
use axml_xml::tree::{NodeId, Tree};
use proptest::prelude::*;

// ---- tree generator (same shape as prop_xml.rs) -----------------------

#[derive(Debug, Clone)]
struct NodeSpec {
    label: String,
    attrs: Vec<(String, String)>,
    text: Option<String>,
    children: Vec<NodeSpec>,
}

fn arb_label() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_.-]{0,6}".prop_map(|s| s)
}

fn arb_node() -> impl Strategy<Value = NodeSpec> {
    let leaf = (
        arb_label(),
        proptest::collection::vec((arb_label(), "[a-z0-9 ]{0,6}"), 0..3),
        proptest::option::of("[a-z0-9]{1,8}".prop_map(|s| s)),
    )
        .prop_map(|(label, mut attrs, text)| {
            attrs.sort();
            attrs.dedup_by(|a, b| a.0 == b.0);
            NodeSpec {
                label,
                attrs,
                text,
                children: vec![],
            }
        });
    leaf.prop_recursive(3, 24, 4, |inner| {
        (
            arb_label(),
            proptest::collection::vec((arb_label(), "[a-z0-9 ]{0,6}"), 0..3),
            proptest::option::of("[a-z0-9]{1,8}".prop_map(|s| s)),
            proptest::collection::vec(inner, 0..4),
        )
            .prop_map(|(label, mut attrs, text, children)| {
                attrs.sort();
                attrs.dedup_by(|a, b| a.0 == b.0);
                NodeSpec {
                    label,
                    attrs,
                    text,
                    children,
                }
            })
    })
}

fn build(t: &mut Tree, at: NodeId, spec: &NodeSpec) {
    for (k, v) in &spec.attrs {
        t.set_attr(at, k.as_str(), v.clone()).unwrap();
    }
    if let Some(txt) = &spec.text {
        t.add_text(at, txt.clone());
    }
    for c in &spec.children {
        let el = t.add_element(at, c.label.as_str());
        build(t, el, c);
    }
}

fn arb_tree() -> impl Strategy<Value = Tree> {
    arb_node().prop_map(|spec| {
        let mut t = Tree::new(spec.label.as_str());
        let root = t.root();
        build(&mut t, root, &spec);
        t
    })
}

// ---- seeded mutation programs -----------------------------------------

/// Apply one random mutation to `t`, selecting targets by *preorder
/// position* (not raw id) so the identical program can be replayed on a
/// structurally equal tree with different arena ids.
fn mutate_once(t: &mut Tree, rng: &mut SplitMix64) {
    let live: Vec<NodeId> = t.descendants_with_self(t.root()).collect();
    let elements: Vec<NodeId> = live
        .iter()
        .copied()
        .filter(|&n| t.node(n).is_element())
        .collect();
    let pick = |rng: &mut SplitMix64, xs: &[NodeId]| xs[rng.gen_range(0..xs.len())];
    match rng.gen_range(0..5u32) {
        0 => {
            let at = pick(rng, &elements);
            let label = format!("m{}", rng.gen_range(0..20u32));
            t.add_element(at, label.as_str());
        }
        1 => {
            let at = pick(rng, &elements);
            t.add_text(at, format!("t{}", rng.gen_range(0..100u32)));
        }
        2 => {
            let at = pick(rng, &elements);
            let k = format!("k{}", rng.gen_range(0..5u32));
            let v = format!("v{}", rng.gen_range(0..100u32));
            t.set_attr(at, k.as_str(), v).unwrap();
        }
        3 => {
            // detach a non-root node, if any
            let candidates: Vec<NodeId> = live.iter().copied().filter(|&n| n != t.root()).collect();
            if !candidates.is_empty() {
                t.detach(pick(rng, &candidates)).unwrap();
            }
        }
        _ => {
            let at = pick(rng, &elements);
            t.clear_children(at);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Sharing a subtree and grafting it elsewhere is byte-identical to
    /// deep-copying it: serialization AND canonical hash agree with the
    /// deep-clone oracle.
    #[test]
    fn frag_graft_matches_deep_clone_oracle(t in arb_tree(), sel in any::<u64>()) {
        let live: Vec<NodeId> = t.descendants_with_self(t.root())
            .filter(|&n| t.node(n).is_element())
            .collect();
        let node = live[(sel as usize) % live.len()];

        // by-handle path
        let frag = t.share(node).unwrap();
        let mut via_handle = Tree::new("sink");
        let r = via_handle.root();
        via_handle.graft_frag(r, &frag).unwrap();

        // by-copy oracle
        let oracle_sub = t.deep_copy(node);
        let mut via_copy = Tree::new("sink");
        let r2 = via_copy.root();
        via_copy.graft(r2, &oracle_sub, oracle_sub.root()).unwrap();

        prop_assert_eq!(via_handle.serialize(), via_copy.serialize());
        prop_assert_eq!(canonical_hash(&via_handle, via_handle.root()), canonical_hash(&via_copy, via_copy.root()));
        // and the frag itself serializes exactly like the source subtree
        prop_assert_eq!(frag.serialize(), t.serialize_node(node));
    }

    /// A subtree view is observationally equal to a compact deep copy.
    #[test]
    fn subtree_view_matches_deep_copy(t in arb_tree(), sel in any::<u64>()) {
        let live: Vec<NodeId> = t.descendants_with_self(t.root())
            .filter(|&n| t.node(n).is_element())
            .collect();
        let node = live[(sel as usize) % live.len()];
        let view = t.subtree(node).unwrap();
        let copy = t.deep_copy(node);
        prop_assert!(view.shares_arena_with(&t));
        prop_assert_eq!(view.serialize(), copy.serialize());
        prop_assert_eq!(canonical_hash(&view, view.root()), canonical_hash(&copy, copy.root()));
        prop_assert!(whole_tree_equiv(&view, &copy));
        prop_assert_eq!(view.live_len(), copy.live_len());
        // the view root never leaks structure above the view
        prop_assert_eq!(view.parent(view.root()), None);
    }

    /// Copy-on-write snapshot isolation: replaying the same seeded
    /// mutation program on a shared handle and on a deep-clone oracle
    /// yields identical results, and the original never changes.
    #[test]
    fn cow_mutation_matches_deep_clone_oracle(t in arb_tree(), seed in any::<u64>()) {
        let frozen = t.serialize();
        let frozen_hash = canonical_hash(&t, t.root());

        let mut shared = t.clone();          // O(1) handle
        let mut oracle = t.deep_copy(t.root()); // compact deep clone

        let mut rng1 = SplitMix64::new(seed);
        let mut rng2 = SplitMix64::new(seed);
        for _ in 0..8 {
            mutate_once(&mut shared, &mut rng1);
            mutate_once(&mut oracle, &mut rng2);
        }

        // same program ⇒ same observable tree
        prop_assert_eq!(shared.serialize(), oracle.serialize());
        prop_assert_eq!(canonical_hash(&shared, shared.root()), canonical_hash(&oracle, oracle.root()));
        // the original snapshot is untouched by the COW mutations
        prop_assert_eq!(t.serialize(), frozen);
        prop_assert_eq!(canonical_hash(&t, t.root()), frozen_hash);
        // and the arenas have diverged
        prop_assert!(!shared.shares_arena_with(&t));
    }

    /// Frags pin their snapshot across arbitrary source mutations.
    #[test]
    fn frag_pins_snapshot_across_mutations(t in arb_tree(), sel in any::<u64>(), seed in any::<u64>()) {
        let live: Vec<NodeId> = t.descendants_with_self(t.root())
            .filter(|&n| t.node(n).is_element())
            .collect();
        let node = live[(sel as usize) % live.len()];
        let frag = t.share(node).unwrap();
        let before = frag.serialize();

        let mut mutated = t.clone();
        let mut rng = SplitMix64::new(seed);
        for _ in 0..8 {
            mutate_once(&mut mutated, &mut rng);
        }
        prop_assert_eq!(frag.serialize(), before);
        prop_assert_eq!(frag.serialize(), t.serialize_node(node));
    }

    /// Structural sharing holds until (and only until) mutation.
    #[test]
    fn clone_shares_until_mutation(t in arb_tree()) {
        let mut c = t.clone();
        prop_assert!(c.shares_arena_with(&t));
        let r = c.root();
        c.add_element(r, "poke");
        prop_assert!(!c.shares_arena_with(&t));
        // the second mutation must not re-copy: still unshared
        c.add_element(r, "poke2");
        prop_assert!(!c.shares_arena_with(&t));
    }
}
