//! Continuous services: live documents that keep filling themselves.
//!
//! Run with: `cargo run --example subscription`
//!
//! §2.2 of the paper: *"AXML also supports calls to continuous services
//! … the response trees successively sent accumulate as siblings of the
//! sc node"*, and calls may be chained: *"if a service call sc1 must be
//! activated just after sc2 … sc1 will be activated after handling every
//! answer to sc2."* This example builds a small news/alerting pipeline:
//!
//!   newsroom ──(db-news, continuous)──▶ reader digest
//!                      │ @after
//!                      ▼
//!             notify service → pager document on a third peer
//!
//! and streams items through it, printing what crosses the wire.

use axml::prelude::*;
use axml::xml::tree::Tree;

fn main() {
    let mut sys = AxmlSystem::builder()
        .peers(["reader", "newsroom", "pager"])
        .link("reader", "newsroom", LinkCost::wan())
        .link("reader", "pager", LinkCost::lan())
        .link("newsroom", "pager", LinkCost::wan())
        // The newsroom state: a stream of items, plus a marker board.
        .doc("newsroom", "wire", "<wire/>")
        .doc("newsroom", "board", "<board><mark>news-batch-processed</mark></board>")
        // Continuous service: database-topic items only.
        .service(
            "newsroom",
            "db-news",
            r#"for $i in doc("wire")/item where $i/@topic = "databases" return <story>{$i/title}</story>"#,
        )
        // A second service used by the @after chain.
        .service("newsroom", "ack", r#"doc("board")/mark"#)
        // The pager's inbox (forward-list target).
        .doc("pager", "alerts", "<alerts/>")
        .build()
        .unwrap();
    let reader = sys.peer_id("reader").unwrap();
    let newsroom = sys.peer_id("newsroom").unwrap();
    let pager = sys.peer_id("pager").unwrap();
    let alerts_root = sys
        .peer(pager)
        .docs
        .get(&"alerts".into())
        .unwrap()
        .tree()
        .root();

    // The reader's digest: a live AXML document with a chained call whose
    // results go straight to the pager (explicit forw — §2.3).
    let digest_xml = format!(
        r#"<digest>
             <sc id="news"><peer>p1</peer><service>db-news</service></sc>
             <sc after="news"><peer>p1</peer><service>ack</service>
               <forw>alerts#{}@p2</forw></sc>
           </digest>"#,
        alerts_root.index()
    );
    sys.install_doc(reader, "digest", Tree::parse(&digest_xml).unwrap())
        .unwrap();

    println!("activating the digest document (sc elements become subscriptions)…");
    let subs = sys.activate_document(reader, &"digest".into()).unwrap();
    println!("  {} subscriptions created", subs.len());
    for s in sys.subscriptions() {
        println!(
            "  sub {}: {} @ {} → {} sink(s), trigger {:?}",
            s.id,
            s.service,
            s.provider,
            s.sink.len(),
            s.trigger
        );
    }

    // ---- stream items through -------------------------------------------
    let items = [
        ("databases", "A fully algebraic distributed XML engine"),
        ("sports", "Local team wins"),
        ("databases", "Continuous queries considered delightful"),
        ("weather", "Rain expected"),
        ("databases", "Optimizers everywhere"),
    ];
    for (topic, title) in items {
        sys.reset_stats();
        let delivered = sys
            .feed(
                newsroom,
                "wire",
                Tree::parse(&format!(
                    r#"<item topic="{topic}"><title>{title}</title></item>"#
                ))
                .unwrap(),
            )
            .unwrap();
        println!(
            "\nfeed [{topic:9}] {title:45} → {delivered} delivery(ies), {} B on the wire",
            sys.stats().total_bytes()
        );
    }

    // ---- final state ------------------------------------------------------
    let digest = sys.peer(reader).docs.get(&"digest".into()).unwrap().tree();
    let stories = digest.descendants_labeled(digest.root(), "story").count();
    println!("\nreader digest now holds {stories} stories:");
    for s in digest.descendants_labeled(digest.root(), "story") {
        println!("  - {}", digest.text(s));
    }
    assert_eq!(stories, 3, "three database stories were streamed");

    let alerts = sys.peer(pager).docs.get(&"alerts".into()).unwrap().tree();
    println!("pager alerts document: {}", alerts.serialize());
    assert!(
        alerts.serialize().contains("news-batch-processed"),
        "the @after chain delivered the ack to the pager"
    );

    // The run report covers the last feed (counters were reset per item):
    // one delta pump, with earlier stories suppressed by the delta cache.
    println!("\n{}", sys.run_report("last feed item (delta pump)"));
}
