//! The software-distribution application of §4 (the EDOS project
//! scenario referenced by the paper's extended version).
//!
//! Run with: `cargo run --example software_distribution`
//!
//! Setup: a vendor publishes a package catalog; two mirrors replicate it
//! (a generic document class `catalog@any`); clients in two regions
//! subscribe to security updates through continuous services and query
//! distributed metadata. This exercises: generic documents + pick
//! policies (§2.3/def. (9)), continuous services (§2.2), forward lists,
//! and the optimizer across a clustered WAN.

use axml::prelude::*;
use axml::xml::tree::Tree;

fn catalog(n: usize) -> Tree {
    let mut xml = String::from("<catalog>");
    for i in 0..n {
        xml.push_str(&format!(
            r#"<pkg name="pkg-{i}" arch="x86_64"><version>1.{}</version><size>{}</size></pkg>"#,
            i % 7,
            (i * 997) % 100_000
        ));
    }
    xml.push_str("</catalog>");
    Tree::parse(&xml).unwrap()
}

fn main() {
    // ---- topology: vendor + 2 mirrors + 2 clients ----------------------
    // Clusters: {vendor, mirror-eu}, {mirror-us, client-us}, {client-eu}
    let cat = catalog(300);
    println!("catalog: 300 packages, {} bytes", cat.serialized_size());
    let mut builder =
        AxmlSystem::builder().peers(["vendor", "mirror-eu", "mirror-us", "client-eu", "client-us"]);
    for (a, b, cost) in [
        ("vendor", "mirror-eu", LinkCost::lan()),
        ("vendor", "mirror-us", LinkCost::wan()),
        ("vendor", "client-eu", LinkCost::wan()),
        ("vendor", "client-us", LinkCost::slow()),
        ("mirror-eu", "client-eu", LinkCost::lan()),
        ("mirror-eu", "mirror-us", LinkCost::wan()),
        ("mirror-eu", "client-us", LinkCost::slow()),
        ("mirror-us", "client-us", LinkCost::lan()),
        ("mirror-us", "client-eu", LinkCost::slow()),
        ("client-eu", "client-us", LinkCost::slow()),
    ] {
        builder = builder.link(a, b, cost);
    }
    // A replicated catalog (generic document class) on the vendor and
    // both mirrors.
    let mut sys = builder
        .replica("vendor", "catalog", "catalog", cat.clone())
        .replica("mirror-eu", "catalog", "catalog", cat.clone())
        .replica("mirror-us", "catalog", "catalog", cat)
        .pick_policy(PickPolicy::Closest)
        .build()
        .unwrap();
    let vendor = sys.peer_id("vendor").unwrap();
    let client_eu = sys.peer_id("client-eu").unwrap();
    let client_us = sys.peer_id("client-us").unwrap();

    // ---- a client queries the generic catalog --------------------------
    let q = Query::parse(
        "want",
        r#"for $p in $0//pkg where $p/size/text() > 90000 return <get>{$p/@name}</get>"#,
    )
    .unwrap();
    let naive = Expr::Apply {
        query: LocatedQuery::new(q, client_us),
        args: vec![Expr::Doc {
            name: "catalog".into(),
            at: PeerRef::Any, // "some replica" — the system picks
        }],
    };
    println!("\n== client-us queries catalog@any, naive ==");
    let out = sys.eval(client_us, &naive).unwrap();
    println!("{} large packages; traffic: {}", out.len(), sys.stats());

    sys.reset_stats();
    let model = CostModel::from_system(&sys);
    let plan = Optimizer::standard().optimize(&model, client_us, &naive);
    println!("== optimized (rule trace: {}) ==", plan.trace.join(" → "));
    let out2 = sys.eval(client_us, &plan.expr).unwrap();
    assert!(forest_equiv(&out, &out2));
    println!("{} large packages; traffic: {}", out2.len(), sys.stats());

    // ---- security-update subscriptions (continuous services) -----------
    println!("== security-update subscriptions ==");
    sys.install_doc(vendor, "advisories", Tree::parse("<advisories/>").unwrap())
        .unwrap();
    sys.register_declarative_service(
        vendor,
        "security-feed",
        r#"for $a in doc("advisories")/advisory where $a/@severity = "critical" return {$a}"#,
    )
    .unwrap();
    for (client, name) in [(client_eu, "inbox-eu"), (client_us, "inbox-us")] {
        sys.install_doc(
            client,
            name,
            Tree::parse(&format!(
                r#"<{name}><sc><peer>p0</peer><service>security-feed</service></sc></{name}>"#
            ))
            .unwrap(),
        )
        .unwrap();
        sys.activate_document(client, &name.into()).unwrap();
    }
    sys.reset_stats();

    // The vendor publishes three advisories; only critical ones stream out.
    for (id, severity) in [(101, "low"), (102, "critical"), (103, "critical")] {
        let delivered = sys
            .feed(
                vendor,
                "advisories",
                Tree::parse(&format!(
                    r#"<advisory id="{id}" severity="{severity}"><pkg>pkg-{id}</pkg></advisory>"#
                ))
                .unwrap(),
            )
            .unwrap();
        println!("advisory {id} ({severity}): {delivered} deliveries");
    }
    for (client, name) in [(client_eu, "inbox-eu"), (client_us, "inbox-us")] {
        let inbox = sys.peer(client).docs.get(&name.into()).unwrap().tree();
        let received = inbox.children(inbox.root()).len() - 1; // minus the sc
        println!("{name}: {received} advisories received");
        assert_eq!(received, 2);
    }
    println!("subscription traffic: {}", sys.stats());
    // The run report covers everything since the reset above: three feeds,
    // two subscribers, only critical advisories shipped.
    println!("\n{}", sys.run_report("advisory stream (two subscribers)"));
}
