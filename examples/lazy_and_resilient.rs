//! Lazy activation, type-driven activation and partition resilience.
//!
//! Run with: `cargo run --example lazy_and_resilient`
//!
//! Three short acts:
//!
//! 1. **Lazy AXML** (§2.2, the \[2\] policy): a portal document embeds
//!    `mode="lazy"` calls to a news service and a stock service; a query
//!    asking only for news fires only the news call.
//! 2. **Type-driven activation** (the \[6\] policy): the same portal must
//!    reach a schema type that requires at least one `news` element; calls
//!    are activated until it validates.
//! 3. **Partition resilience**: the client–server link fails; the
//!    optimizer reroutes the fetch through a relay peer (rule (12)
//!    right-to-left) and the query still answers.

use axml::core::cost::CostModel;
use axml::prelude::*;
use axml::types::content::Content;

fn main() {
    let mut builder = AxmlSystem::builder()
        .peers(["client", "server", "relay"])
        .link("client", "server", LinkCost::wan())
        .link("client", "relay", LinkCost::lan())
        .link("server", "relay", LinkCost::lan())
        // Server-side data…
        .doc(
            "server",
            "wire",
            r#"<wire><item kind="news">Algebraic optimizers ship</item>
                     <item kind="stock">AXML +42%</item></wire>"#,
        )
        // …and the portal document: two lazy calls.
        .doc(
            "client",
            "portal",
            r#"<portal>
                 <sc mode="lazy"><peer>p1</peer><service>news-svc</service></sc>
                 <sc mode="lazy"><peer>p1</peer><service>stock-svc</service></sc>
               </portal>"#,
        );
    // Two declarative services with typed outputs.
    for (svc, kind, out_label) in [
        ("news-svc", "news", "news"),
        ("stock-svc", "stock", "stock"),
    ] {
        let q = Query::parse(
            svc,
            &format!(
                r#"for $i in doc("wire")/item where $i/@kind = "{kind}" return <{out_label}>{{$i/text()}}</{out_label}>"#
            ),
        )
        .unwrap();
        builder = builder.service_obj(
            "server",
            Service::declarative(svc, q).with_signature(Signature::new(
                vec![],
                TreeType::new(out_label, axml::types::schema::TypeName::any()),
            )),
        );
    }
    let mut sys = builder.build().unwrap();
    let client = sys.peer_id("client").unwrap();
    let server = sys.peer_id("server").unwrap();

    // ---- act 1: lazy query evaluation ----------------------------------
    println!("== act 1: lazy activation ==");
    let q = Query::parse("want-news", "$0//news").unwrap();
    let (results, activated) = sys.query_document(client, &"portal".into(), &q).unwrap();
    println!(
        "query `$0//news`: {} result(s), {activated} of 2 lazy calls fired",
        results.len()
    );
    for r in &results {
        println!("  {}", r.serialize());
    }
    assert_eq!(activated, 1, "the stock call never fires");

    // ---- act 2: type-driven activation ----------------------------------
    println!("\n== act 2: type-driven activation ==");
    let schema = SchemaBuilder::new()
        .ty(
            "PortalT",
            Content::interleave([
                Content::plus(Content::elem("news", "AnyT")),
                Content::plus(Content::elem("stock", "AnyT")),
            ]),
        )
        .ty("AnyT", Content::any())
        .build()
        .unwrap();
    let fired = sys
        .activate_to_type(client, &"portal".into(), &schema, &"PortalT".into())
        .unwrap();
    println!("activated {fired} more call(s) to reach type PortalT");
    let portal = sys.peer(client).docs.get(&"portal".into()).unwrap().tree();
    schema.validate(portal, "PortalT").unwrap();
    println!("portal now validates: {}", portal.serialize());

    // ---- act 3: partition resilience -------------------------------------
    println!("\n== act 3: partition resilience ==");
    sys.net_mut().fail_link(client, server);
    let fetch = Expr::EvalAt {
        peer: server,
        expr: Box::new(Expr::Send {
            dest: SendDest::Peer(client),
            payload: Box::new(Expr::Doc {
                name: "wire".into(),
                at: PeerRef::At(server),
            }),
        }),
    };
    match sys.eval(client, &fetch) {
        Err(e) => println!("direct fetch fails as expected: {e}"),
        Ok(_) => unreachable!("the link is down"),
    }
    let model = CostModel::from_system(&sys);
    // Scope the run report to the rerouted plan: reset both counters, run
    // the search against the system's observer, then execute.
    sys.reset_stats();
    let plan = Optimizer::standard().optimize_with(&model, client, &fetch, sys.obs_mut());
    println!("optimizer reroutes via: {}", plan.trace.join(" → "));
    let out = sys.eval(client, &plan.expr).unwrap();
    println!(
        "fetched {} tree(s) through the relay despite the partition",
        out.len()
    );
    assert_eq!(out.len(), 1);
    println!(
        "\n{}",
        sys.run_report("act 3: rerouted fetch through the relay")
    );
}
