//! Quickstart: two peers, one catalog, one query — naive vs. optimized,
//! with the observability layer turned on.
//!
//! Run with: `cargo run --example quickstart`
//!
//! A client peer queries a package catalog hosted on a server across a
//! WAN link. The naive strategy (definition (7) of the paper) ships the
//! whole catalog to the client; the optimizer applies the equivalence
//! rules of §3.3 (query delegation / pushed selections) and ships only
//! the selected subset.
//!
//! Everything the engine does is recorded twice over: a [`VecSink`]
//! receives structured [`TraceEvent`]s (definitions fired, rules tried,
//! messages sent), and the system's [`EvalMetrics`] aggregate them into a
//! [`RunReport`] that reconciles exactly with the network statistics —
//! printed at the end as both text and JSON.
//!
//! Set `AXML_TRACE_OUT=run.trc` to additionally stream the whole trace
//! to a binary file (via a [`FanoutSink`] tee) and replay it with
//! `cargo run -p axml-bench --bin axml-trace -- run.trc`.
//!
//! Set `AXML_TRACE_TCP=127.0.0.1:PORT` to *also* stream the trace live
//! over TCP with a [`SocketSink`] — start
//! `cargo run -p axml-bench --bin axml-top -- --listen 127.0.0.1:PORT`
//! first and watch the run as it happens.

use axml::prelude::*;
use axml::xml::tree::Tree;

fn main() {
    // A catalog with 500 packages, of which only a handful are large.
    let mut xml = String::from("<catalog>");
    for i in 0..500 {
        let size = if i % 100 == 0 { 50_000 + i } else { i % 1000 };
        xml.push_str(&format!(
            r#"<pkg name="package-{i}"><size>{size}</size><summary>example package number {i}</summary></pkg>"#
        ));
    }
    xml.push_str("</catalog>");
    let catalog = Tree::parse(&xml).expect("well-formed catalog");
    println!(
        "catalog: 500 packages, {} bytes serialized",
        catalog.serialized_size()
    );

    // ---- build the system --------------------------------------------
    // Tracing on from the start: keep one sink handle, give the builder
    // its clone. With AXML_TRACE_OUT set, tee the same stream into a
    // binary trace file for offline replay with `axml-trace`.
    let sink = VecSink::new();
    let trace_out = std::env::var("AXML_TRACE_OUT").ok();
    let trace_tcp = std::env::var("AXML_TRACE_TCP").ok();
    let tee: Box<dyn TraceSink> = if trace_out.is_some() || trace_tcp.is_some() {
        let mut fan = FanoutSink::new().with(sink.clone());
        if let Some(path) = &trace_out {
            fan = fan.with(BinSink::create(path).expect("create trace file"));
        }
        if let Some(addr) = &trace_tcp {
            let addr = addr.parse().expect("AXML_TRACE_TCP is host:port");
            fan = fan.with(SocketSink::connect(addr).expect("trace consumer listening"));
        }
        Box::new(fan)
    } else {
        Box::new(sink.clone())
    };
    let mut sys = AxmlSystem::builder()
        .peers(["client", "server"])
        .link("client", "server", LinkCost::wan())
        .doc("server", "catalog", catalog)
        .trace(tee)
        .build()
        .unwrap();
    let client = sys.peer_id("client").unwrap();
    let server = sys.peer_id("server").unwrap();

    // ---- the query -----------------------------------------------------
    let q = Query::parse(
        "find-big",
        r#"for $p in $0//pkg where $p/size/text() > 10000
           return <big name="{$p/@name}">{$p/size}</big>"#,
    )
    .unwrap();
    println!("query: {}", q.source().unwrap().trim());

    // ---- naive evaluation ----------------------------------------------
    let naive = Expr::Apply {
        query: LocatedQuery::new(q, client),
        args: vec![Expr::Doc {
            name: "catalog".into(),
            at: PeerRef::At(server),
        }],
    };
    let results = sys.eval(client, &naive).unwrap();
    println!("\n== naive strategy (ship the catalog, filter locally) ==");
    println!("results: {} packages", results.len());
    println!("traffic: {}", sys.stats());
    println!("trace:");
    let events = sink.take();
    let mut traced = events.len();
    for e in events {
        println!("  {e}");
    }

    // ---- optimized evaluation -------------------------------------------
    let naive_bytes = sys.stats().total_bytes();
    sys.reset_stats(); // resets net stats AND metrics together
    let model = CostModel::from_system(&sys);
    let plan = Optimizer::standard().optimize_with(&model, client, &naive, sys.obs_mut());
    println!("\n== optimizer ==");
    println!("{plan}");
    let results2 = sys.eval(client, &plan.expr).unwrap();
    println!("\n== optimized strategy ==");
    println!("results: {} packages", results2.len());
    println!("traffic: {}", sys.stats());
    // The beam search attempts ~100 candidates; the structured events make
    // it trivial to filter — show only the accepted rewrites and execution.
    println!("trace (accepted rewrites + execution):");
    let events = sink.take();
    traced += events.len();
    for e in events {
        if matches!(
            e,
            TraceEvent::RuleAttempted {
                accepted: false,
                ..
            }
        ) {
            continue;
        }
        println!("  {e}");
    }

    assert!(forest_equiv(&results, &results2), "same answers");
    let opt_bytes = sys.stats().total_bytes();
    println!(
        "\nbytes shipped: naive {naive_bytes} → optimized {opt_bytes} ({:.1}x less)",
        naive_bytes as f64 / opt_bytes as f64
    );

    // ---- the run report ---------------------------------------------------
    // Metrics cover everything since reset_stats: the optimizer search and
    // the optimized plan's execution. They must reconcile exactly with the
    // network layer's own accounting.
    let report = sys.run_report("quickstart: optimized plan");
    println!("\n{report}");
    println!("as JSON:\n{}", report.to_json());
    assert!(report.reconciled, "metrics reconcile with NetStats exactly");

    // ---- the trace file ---------------------------------------------------
    // The tee'd binary file holds the same stream the VecSink saw:
    // detaching flushes it, and decoding it back gives event parity.
    if let Some(path) = trace_out {
        sys.clear_trace_sink();
        traced += sink.len();
        let mut n_file = 0usize;
        for record in TraceReader::open(&path).expect("trace file readable") {
            record.expect("every record decodes");
            n_file += 1;
        }
        assert_eq!(n_file, traced, "file trace has every in-memory event");
        println!("\ntrace file {path}: {n_file} events");
        println!("replay: cargo run -p axml-bench --bin axml-trace -- {path}");
    }
}
