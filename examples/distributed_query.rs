//! Distributed query optimization, rule by rule.
//!
//! Run with: `cargo run --example distributed_query`
//!
//! Walks through the paper's §3.3 equivalence rules on concrete
//! scenarios, printing for each the naive plan, the rewritten plan, the
//! rule trace, and the measured traffic of both. The scenarios are the
//! same shapes the benchmark suite sweeps (see EXPERIMENTS.md).

use axml::core::cost::CostModel;
use axml::core::rules;
use axml::prelude::*;
use axml::xml::tree::Tree;

fn catalog(n: usize) -> Tree {
    let mut xml = String::from("<catalog>");
    for i in 0..n {
        xml.push_str(&format!(
            r#"<pkg name="pkg-{i}"><size>{}</size><desc>package number {i} of the demo catalog</desc></pkg>"#,
            (i * 61) % 10_000
        ));
    }
    xml.push_str("</catalog>");
    Tree::parse(&xml).unwrap()
}

/// Evaluate a plan on a fresh system, returning (results, bytes, ms).
fn measure(build: &dyn Fn() -> AxmlSystem, site: PeerId, e: &Expr) -> (usize, u64, f64) {
    let mut sys = build();
    let out = sys.eval(site, e).unwrap();
    (
        out.len(),
        sys.stats().total_bytes(),
        sys.stats().makespan_ms(),
    )
}

fn show(title: &str, build: &dyn Fn() -> AxmlSystem, site: PeerId, naive: &Expr) {
    println!("\n————— {title} —————");
    let sys = build();
    let model = CostModel::from_system(&sys);
    let plan = Optimizer::standard().optimize(&model, site, naive);
    let (n1, b1, t1) = measure(build, site, naive);
    // Measure the optimized plan on a system with metrics flowing, and
    // re-run the search against the same observer so the report also
    // carries the rule-application counters.
    let mut sys2 = build();
    let _ = Optimizer::standard().optimize_with(&model, site, naive, sys2.obs_mut());
    let out2 = sys2.eval(site, &plan.expr).unwrap();
    let (n2, b2, t2) = (
        out2.len(),
        sys2.stats().total_bytes(),
        sys2.stats().makespan_ms(),
    );
    assert_eq!(n1, n2, "optimizer must preserve answers");
    println!("naive:     {naive}");
    println!("optimized: {}", plan.expr);
    println!(
        "rules:     {}",
        if plan.trace.is_empty() {
            "(none applicable)".to_string()
        } else {
            plan.trace.join(" → ")
        }
    );
    println!("results:   {n1} trees");
    println!("naive      {b1:>9} B  {t1:>9.1} ms");
    println!(
        "optimized  {b2:>9} B  {t2:>9.1} ms   ({:.1}x bytes)",
        b1 as f64 / b2.max(1) as f64
    );
    println!("{}", sys2.run_report(format!("{title} — optimized plan")));
}

fn main() {
    let a = PeerId(0);
    let b = PeerId(1);
    let c = PeerId(2);

    // ---- scenario 1: pushing selections (Example 1, rules 10+11) -------
    let build1 = || {
        AxmlSystem::builder()
            .peers(["client", "data"])
            .link("client", "data", LinkCost::wan())
            .doc("data", "catalog", catalog(400))
            .build()
            .unwrap()
    };
    let sel = Query::parse(
        "sel",
        r#"for $p in $0//pkg where $p/size/text() > 9000 return <hit>{$p/@name}</hit>"#,
    )
    .unwrap();
    show(
        "Example 1: pushing selections over a WAN",
        &build1,
        a,
        &Expr::Apply {
            query: LocatedQuery::new(sel, a),
            args: vec![Expr::Doc {
                name: "catalog".into(),
                at: PeerRef::At(b),
            }],
        },
    );

    // ---- scenario 2: rule 16, pushing a query over a service call ------
    let build2 = || {
        let mut sys = build1();
        sys.register_declarative_service(
            PeerId(1),
            "all-pkgs",
            r#"for $p in doc("catalog")//pkg return {$p}"#,
        )
        .unwrap();
        sys
    };
    let fmt = Query::parse(
        "fmt",
        r#"for $t in $0 where $t/size/text() > 9000 return <w>{$t/@name}</w>"#,
    )
    .unwrap();
    show(
        "Rule 16: pushing a query over a service call",
        &build2,
        a,
        &Expr::Apply {
            query: LocatedQuery::new(fmt, a),
            args: vec![Expr::Sc {
                provider: PeerRef::At(b),
                service: "all-pkgs".into(),
                params: vec![],
                forward: vec![],
            }],
        },
    );

    // ---- scenario 3: rule 12 R2L, relaying through a gateway -----------
    let build3 = || {
        AxmlSystem::builder()
            .peers(["edge", "origin", "gateway"])
            // terrible direct link, good links via the gateway
            .link(
                "edge",
                "origin",
                LinkCost {
                    latency_ms: 400.0,
                    bytes_per_ms: 20.0,
                    per_msg_bytes: 256,
                },
            )
            .link("edge", "gateway", LinkCost::lan())
            .link("origin", "gateway", LinkCost::lan())
            .doc("origin", "catalog", catalog(200))
            .build()
            .unwrap()
    };
    show(
        "Rule 12 (R→L): data in transit stops at a gateway",
        &build3,
        a,
        &Expr::EvalAt {
            peer: b,
            expr: Box::new(Expr::Send {
                dest: SendDest::Peer(a),
                payload: Box::new(Expr::Doc {
                    name: "catalog".into(),
                    at: PeerRef::At(b),
                }),
            }),
        },
    );

    // ---- scenario 4: rule 13, sharing a repeated transfer ---------------
    let build4 = build1;
    let join = Query::parse(
        "selfjoin",
        r#"for $x in $0//pkg for $y in $1//pkg
           where $x/size/text() = $y/size/text() and $x/@name != $y/@name
           return <dup a="{$x/@name}" b="{$y/@name}"/>"#,
    )
    .unwrap();
    let remote = Expr::Doc {
        name: "catalog".into(),
        at: PeerRef::At(b),
    };
    show(
        "Rule 13: sharing one transfer between two uses",
        &build4,
        a,
        &Expr::Apply {
            query: LocatedQuery::new(join, a),
            args: vec![remote.clone(), remote],
        },
    );

    // ---- scenario 5: rule 9, replica choice ------------------------------
    let build5 = || {
        AxmlSystem::builder()
            .peers(["client", "far-mirror", "near-mirror"])
            .link("client", "far-mirror", LinkCost::slow())
            .link("client", "near-mirror", LinkCost::lan())
            .link("far-mirror", "near-mirror", LinkCost::wan())
            .replica("far-mirror", "cat", "catalog", catalog(200))
            .replica("near-mirror", "cat", "catalog", catalog(200))
            .pick_policy(PickPolicy::First) // naive: first registered (far!)
            .build()
            .unwrap()
    };
    show(
        "Rule 9: generic document, replica selection",
        &build5,
        a,
        &Expr::Doc {
            name: "cat".into(),
            at: PeerRef::Any,
        },
    );
    let _ = c;

    // ---- scenario 6: the parallel evaluation driver ----------------------
    // Eight identical calls fan in on one provider. The sequential
    // reference evaluates the service eight times; the parallel driver
    // collapses the duplicates onto a single evaluation — with the
    // same results, the same traffic and the same report, bit for bit.
    println!("\n————— Parallel driver: duplicate fan-in collapses —————");
    let build6 = |driver: DriverKind| {
        AxmlSystem::builder()
            .peers(["coord", "provider"])
            .link("coord", "provider", LinkCost::wan())
            .doc("provider", "catalog", catalog(800))
            .service(
                "provider",
                "scan",
                r#"for $p in doc("catalog")//pkg where $p/size/text() > 9000 return {$p/@name}"#,
            )
            .driver(driver)
            .build()
            .unwrap()
    };
    let batch: String = std::iter::once("<batch>".to_string())
        .chain((0..8).map(|_| "<sc><peer>p1</peer><service>scan</service></sc>".to_string()))
        .chain(std::iter::once("</batch>".to_string()))
        .collect();
    let e = Expr::Tree {
        tree: Tree::parse(&batch).unwrap(),
        at: a,
    };
    let mut reports = Vec::new();
    for (label, driver) in [
        ("sequential", DriverKind::Sequential),
        ("parallel(4)", DriverKind::Parallel { threads: 4 }),
    ] {
        let mut sys = build6(driver);
        let t0 = std::time::Instant::now();
        sys.eval(a, &e).unwrap();
        let wall = t0.elapsed().as_secs_f64() * 1e3;
        println!(
            "{label:<12} {wall:>6.2} ms wall   {} msgs  {} B on the wire",
            sys.stats().total_messages(),
            sys.stats().total_bytes()
        );
        let ps = sys.parallel_stats();
        if ps.jobs + ps.cache_hits + ps.dedup_hits > 0 {
            println!(
                "{:12} {} waves, {} duplicate(s) collapsed",
                "",
                ps.waves,
                ps.dedup_hits + ps.cache_hits
            );
        }
        reports.push(sys.run_report("fan-in").to_json());
    }
    assert_eq!(reports[0], reports[1], "drivers must agree bit-for-bit");
    println!("reports:     identical across drivers ✓");

    // ---- rule inventory --------------------------------------------------
    println!("\nactive rule set:");
    for r in rules::standard_rules() {
        println!(
            "  {:22} {}",
            r.name(),
            if r.preserves_sigma() {
                "Σ-preserving"
            } else {
                "extends Σ (materializing)"
            }
        );
    }
}
